"""Circular arcs and circular-arc polygons.

An *optimal region* in MaxBRkNN is the intersection of a set of closed
disks (the NLCs that cover a maximum-score quadrant).  The intersection of
disks is convex and its boundary is a closed chain of circular arcs, one or
more per contributing circle.  :class:`ArcRegion` is that representation;
:mod:`repro.geometry.intersection` constructs it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect

TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Map ``theta`` into ``[0, 2*pi)``."""
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    if theta >= TWO_PI:  # tiny negatives round up to exactly 2*pi
        theta = 0.0
    return theta


@dataclass(frozen=True, slots=True)
class Arc:
    """A counter-clockwise arc of ``circle`` from ``start`` sweeping ``sweep``.

    ``start`` is in ``[0, 2*pi)`` and ``sweep`` in ``(0, 2*pi]``; a sweep of
    exactly ``2*pi`` denotes the full circle (a region bounded by a single
    disk, e.g. a customer whose NLC overlaps no other).
    """

    circle: Circle
    start: float
    sweep: float

    def __post_init__(self) -> None:
        if not 0.0 < self.sweep <= TWO_PI + 1e-12:
            raise ValueError(f"arc sweep out of range: {self.sweep}")

    @property
    def end(self) -> float:
        """End angle (may exceed ``2*pi``; not normalised)."""
        return self.start + self.sweep

    @property
    def is_full_circle(self) -> bool:
        return self.sweep >= TWO_PI - 1e-12

    @property
    def start_point(self) -> Point:
        return self.circle.point_at(self.start)

    @property
    def end_point(self) -> Point:
        return self.circle.point_at(self.end)

    @property
    def midpoint(self) -> Point:
        return self.circle.point_at(self.start + 0.5 * self.sweep)

    @property
    def length(self) -> float:
        return self.circle.r * self.sweep

    def segment_area(self) -> float:
        """Area between the chord and the arc (0 for a full circle's chord
        convention — the full-circle case is handled by the caller)."""
        r = self.circle.r
        return 0.5 * r * r * (self.sweep - math.sin(self.sweep))

    def contains_angle(self, theta: float, tol: float = 1e-12) -> bool:
        """True when boundary angle ``theta`` lies on the arc."""
        if self.is_full_circle:
            return True
        delta = normalize_angle(theta - self.start)
        return delta <= self.sweep + tol

    def farthest_distance_from(self, x: float, y: float) -> float:
        """Largest distance from ``(x, y)`` to a point of this arc.

        Used by Algorithm 2's ``d_max`` update: the farthest point of a full
        circle from ``(x, y)`` lies diametrically away from it; when that
        point falls outside the arc the maximum moves to an arc endpoint.
        """
        c = self.circle
        d_center = math.hypot(x - c.cx, y - c.cy)
        if d_center > 1e-15:
            away = math.atan2(c.cy - y, c.cx - x)
            if self.contains_angle(away):
                return d_center + c.r
        elif self.is_full_circle:
            return c.r
        sp = self.start_point
        ep = self.end_point
        return max(math.hypot(x - sp.x, y - sp.y),
                   math.hypot(x - ep.x, y - ep.y))

    def sample(self, n: int) -> list[Point]:
        """``n`` evenly spaced points along the arc (endpoints included)."""
        if n < 2:
            return [self.midpoint]
        step = self.sweep / (n - 1)
        return [self.circle.point_at(self.start + i * step) for i in range(n)]


class AngularIntervals:
    """A subset of the circle ``[0, 2*pi)`` as disjoint angular intervals.

    Starts as the full circle and is narrowed by successive
    ``intersect_with(center, half_width)`` calls — exactly the constraint
    "the part of circle *i* inside disk *j* is the interval centred on the
    direction towards *j*'s centre".  This is the workhorse behind the
    robust disk-intersection construction.
    """

    __slots__ = ("_full", "_intervals")

    def __init__(self) -> None:
        self._full = True
        self._intervals: list[tuple[float, float]] = []

    @property
    def is_full(self) -> bool:
        return self._full

    @property
    def is_empty(self) -> bool:
        return not self._full and not self._intervals

    def intervals(self) -> list[tuple[float, float]]:
        """Disjoint ``(start, end)`` pairs with ``start`` in ``[0, 2*pi)``
        and ``start < end <= start + 2*pi``."""
        if self._full:
            return [(0.0, TWO_PI)]
        return list(self._intervals)

    def total_measure(self) -> float:
        if self._full:
            return TWO_PI
        return sum(e - s for s, e in self._intervals)

    def intersect_with(self, center: float, half_width: float,
                       min_width: float = 1e-12) -> None:
        """Intersect with the interval ``[center - hw, center + hw]`` mod 2π.

        Intervals narrower than ``min_width`` after clipping are dropped —
        they correspond to grazing tangencies below float resolution.
        """
        half_width = min(half_width, math.pi)
        if half_width <= 0.0:
            self._full = False
            self._intervals = []
            return
        c_start = normalize_angle(center - half_width)
        width = 2.0 * half_width
        if width >= TWO_PI - 1e-15:
            return  # constraint is the whole circle: no-op
        if self._full:
            self._full = False
            self._intervals = [(c_start, c_start + width)]
            return
        c_end = c_start + width
        out: list[tuple[float, float]] = []
        for s, e in self._intervals:
            # The constraint, replicated at -2π, 0 and +2π, covers every way
            # the two (possibly wrapping) intervals can overlap on the circle.
            for shift in (-TWO_PI, 0.0, TWO_PI):
                lo = max(s, c_start + shift)
                hi = min(e, c_end + shift)
                if hi - lo > min_width:
                    out.append((normalize_angle(lo), normalize_angle(lo) + (hi - lo)))
        out.sort()
        self._intervals = out


@dataclass(frozen=True)
class ArcRegion:
    """A convex region bounded by circular arcs: the intersection of disks.

    ``circles`` are the defining closed disks (membership tests use them
    directly: a point is in the region iff it is in every defining disk).
    ``arcs`` describe the boundary; a degenerate region (disks meeting in a
    single point) has no arcs and carries the meeting point instead.
    """

    circles: tuple[Circle, ...]
    arcs: tuple[Arc, ...]
    degenerate_point: Point | None = None
    _tol: float = field(default=1e-9, repr=False)

    @property
    def is_degenerate(self) -> bool:
        """True when the region is a single point (zero area)."""
        return self.degenerate_point is not None

    @property
    def area(self) -> float:
        """Region area: chord-polygon shoelace plus circular-segment bulges."""
        if self.is_degenerate:
            return 0.0
        if len(self.arcs) == 1 and self.arcs[0].is_full_circle:
            return self.arcs[0].circle.area
        ordered = self._ordered_arcs()
        verts: list[Point] = []
        segments = 0.0
        for arc in ordered:
            verts.append(arc.start_point)
            verts.append(arc.end_point)
            segments += arc.segment_area()
        shoelace = 0.0
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            shoelace += a.x * b.y - b.x * a.y
        return 0.5 * abs(shoelace) + segments

    def contains_point(self, x: float, y: float, tol: float | None = None) -> bool:
        """True when ``(x, y)`` lies in every defining disk."""
        eps = self._tol if tol is None else tol
        if self.is_degenerate:
            p = self.degenerate_point
            return math.hypot(x - p.x, y - p.y) <= eps
        return all(c.contains_point(x, y, tol=eps) for c in self.circles)

    def representative_point(self) -> Point:
        """A point inside the region (the degenerate point when degenerate).

        For a non-degenerate region the average of the arc midpoints is
        interior because the region is convex and the midpoints lie on its
        boundary.
        """
        if self.is_degenerate:
            return self.degenerate_point
        if len(self.arcs) == 1 and self.arcs[0].is_full_circle:
            return self.arcs[0].circle.center
        mids = [arc.midpoint for arc in self.arcs]
        sx = sum(p.x for p in mids) / len(mids)
        sy = sum(p.y for p in mids) / len(mids)
        return Point(sx, sy)

    def vertices(self) -> list[Point]:
        """Arc endpoints in boundary order (empty for full-circle regions)."""
        if self.is_degenerate:
            return [self.degenerate_point]
        if len(self.arcs) == 1 and self.arcs[0].is_full_circle:
            return []
        return [arc.start_point for arc in self._ordered_arcs()]

    def bounding_box(self) -> Rect:
        """Axis-aligned bounding box of the region."""
        if self.is_degenerate:
            p = self.degenerate_point
            return Rect(p.x, p.y, p.x, p.y)
        boxes = [self._arc_bbox(arc) for arc in self.arcs]
        out = boxes[0]
        for box in boxes[1:]:
            out = out.union(box)
        return out

    def max_distance_from(self, x: float, y: float) -> float:
        """Largest distance from ``(x, y)`` to the region boundary
        (Algorithm 2's ``d_max``)."""
        if self.is_degenerate:
            p = self.degenerate_point
            return math.hypot(x - p.x, y - p.y)
        return max(arc.farthest_distance_from(x, y) for arc in self.arcs)

    def sample_boundary(self, per_arc: int = 16) -> list[Point]:
        """Sample points along the boundary (tests and plotting)."""
        if self.is_degenerate:
            return [self.degenerate_point]
        out: list[Point] = []
        for arc in self.arcs:
            out.extend(arc.sample(per_arc))
        return out

    def _ordered_arcs(self) -> list[Arc]:
        """Arcs sorted counter-clockwise around an interior point.

        Valid because the region is convex: every boundary arc subtends a
        disjoint angular window as seen from any interior point.
        """
        mids = [arc.midpoint for arc in self.arcs]
        cx = sum(p.x for p in mids) / len(mids)
        cy = sum(p.y for p in mids) / len(mids)
        return sorted(
            self.arcs,
            key=lambda arc: math.atan2(arc.midpoint.y - cy, arc.midpoint.x - cx),
        )

    @staticmethod
    def _arc_bbox(arc: Arc) -> Rect:
        pts = [arc.start_point, arc.end_point]
        c = arc.circle
        # Axis-extreme boundary points belong to the bbox when on the arc.
        for theta, px, py in (
            (0.0, c.cx + c.r, c.cy),
            (math.pi * 0.5, c.cx, c.cy + c.r),
            (math.pi, c.cx - c.r, c.cy),
            (math.pi * 1.5, c.cx, c.cy - c.r),
        ):
            if arc.contains_angle(theta):
                pts.append(Point(px, py))
        return Rect.from_points((p.x, p.y) for p in pts)
