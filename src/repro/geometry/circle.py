"""Closed disks (nearest location circles) and their predicates.

In the MaxBRkNN formulation every customer object owns ``k`` concentric
NLCs; geometrically an NLC is a *closed disk*: a new service site placed
exactly on the circumference of the ``i``-th NLC ties with the current
``i``-th nearest site, and the paper counts such boundary placements as
inside (Definition 3 scores any location "inside" the circle; Theorem 1's
proof explicitly treats points on perimeters as intersecting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disk with centre ``(cx, cy)`` and radius ``r >= 0``.

    A zero-radius circle is legal: it arises when a customer object sits
    exactly on top of a service site.
    """

    cx: float
    cy: float
    r: float

    def __post_init__(self) -> None:
        if self.r < 0:
            raise ValueError(f"negative radius: {self.r}")

    @property
    def center(self) -> Point:
        return Point(self.cx, self.cy)

    @property
    def area(self) -> float:
        return math.pi * self.r * self.r

    def bounding_box(self) -> Rect:
        """Axis-aligned bounding box (used by the R-tree and grid index)."""
        return Rect(self.cx - self.r, self.cy - self.r,
                    self.cx + self.r, self.cy + self.r)

    def contains_point(self, x: float, y: float, tol: float = 0.0) -> bool:
        """True when ``(x, y)`` lies in the closed disk.

        ``tol`` loosens the boundary test: a point within ``tol`` outside
        the circumference still counts.  The exact-arithmetic algorithms in
        the paper do not need this, but the reference solver scores circle
        intersection points that sit exactly on circumferences, where float
        rounding would otherwise flip the answer.
        """
        dx = x - self.cx
        dy = y - self.cy
        rr = self.r + tol
        return dx * dx + dy * dy <= rr * rr

    def distance_to_center(self, x: float, y: float) -> float:
        return math.hypot(x - self.cx, y - self.cy)

    def signed_boundary_distance(self, x: float, y: float) -> float:
        """Distance from ``(x, y)`` to the circumference, positive inside.

        This is the key ``r - dist(o, s)`` quantity of Algorithm 2 (Phase II
        ordering of NLCs by how soon their circumference could clip the
        growing overlap region).
        """
        return self.r - self.distance_to_center(x, y)

    def point_at(self, angle: float) -> Point:
        """The boundary point at ``angle`` radians (CCW from +x)."""
        return Point(self.cx + self.r * math.cos(angle),
                     self.cy + self.r * math.sin(angle))

    def contains_circle(self, other: "Circle") -> bool:
        """True when ``other``'s disk lies entirely inside this disk."""
        d = math.hypot(other.cx - self.cx, other.cy - self.cy)
        return d + other.r <= self.r

    def intersects_circle(self, other: "Circle") -> bool:
        """True when the closed disks share at least one point."""
        d2 = (other.cx - self.cx) ** 2 + (other.cy - self.cy) ** 2
        rsum = self.r + other.r
        return d2 <= rsum * rsum


def circle_circle_intersection(a: Circle, b: Circle,
                               tol: float = 1e-12) -> tuple[Point, ...]:
    """Intersection points of two circle *circumferences*.

    Returns a tuple of zero, one (tangency) or two points.  Concentric
    circles — even coincident ones — return the empty tuple: coincident
    circumferences share infinitely many points and no finite answer is
    meaningful, and the callers (MaxOverlap's region-to-point transformation
    and the intersection-point splitter) treat that case separately.

    ``tol`` is the absolute slack used to accept grazing tangencies that
    float rounding pushes marginally apart.

    The result is exactly symmetric in its arguments: the computation
    runs in a canonical circle order, so ``(a, b)`` and ``(b, a)``
    return bit-identical points.  Without this, near-coincident circles
    can land the two call orders on opposite sides of a rounding
    boundary (the chord midpoint is computed from whichever centre is
    ``a``, and the two paths differ by one float ulp).
    """
    if (b.cx, b.cy, b.r) < (a.cx, a.cy, a.r):
        a, b = b, a
    dx = b.cx - a.cx
    dy = b.cy - a.cy
    d = math.hypot(dx, dy)
    if d <= tol:
        return ()
    if d > a.r + b.r + tol:
        return ()
    if d < abs(a.r - b.r) - tol:
        return ()
    # Distance from a's centre to the radical line along the centre line.
    ell = (d * d + a.r * a.r - b.r * b.r) / (2.0 * d)
    h2 = a.r * a.r - ell * ell
    ux = dx / d
    uy = dy / d
    px = a.cx + ell * ux
    py = a.cy + ell * uy
    if h2 <= tol * max(1.0, a.r * a.r):
        return (Point(px, py),)
    h = math.sqrt(h2)
    return (
        Point(px - h * uy, py + h * ux),
        Point(px + h * uy, py - h * ux),
    )


def circle_intersects_rect(circle: Circle, rect: Rect) -> bool:
    """True when the disk's *interior* and the closed rectangle share a
    point.

    This predicate computes ``Q.I`` membership (Theorem 1) under region
    semantics: a disk grazing the rectangle at a single boundary point
    contributes no score to any full-dimensional region inside it, so it is
    excluded (strict inequality).  The distance from the circle centre to
    the rectangle is the per-axis clamped distance.
    """
    dx = max(rect.xmin - circle.cx, 0.0, circle.cx - rect.xmax)
    dy = max(rect.ymin - circle.cy, 0.0, circle.cy - rect.ymax)
    return dx * dx + dy * dy < circle.r * circle.r


def circle_contains_rect(circle: Circle, rect: Rect) -> bool:
    """True when the closed disk contains the whole rectangle.

    This predicate computes ``Q.C`` membership (Theorem 1): the farthest
    rectangle corner from the circle centre must lie inside the disk.
    """
    dx = max(circle.cx - rect.xmin, rect.xmax - circle.cx)
    dy = max(circle.cy - rect.ymin, rect.ymax - circle.cy)
    return dx * dx + dy * dy <= circle.r * circle.r
