"""Audited floating-point comparison helpers.

Every tolerance-based float comparison in the solver stack routes through
the named helpers in this module; raw ``==``/``!=`` on floats is reserved
for bit-identity assertions and is flagged by the ``RPR002`` rule of
:mod:`repro.analysis` unless the site carries a
``# repro: float-eq(<reason>)`` audit pragma.

Two regimes, two helpers:

* :func:`float_eq` — symmetric relative-plus-absolute closeness, for
  comparing two computed quantities (scores, distances) whose rounding
  histories differ.
* :func:`near_zero` — absolute-only closeness to zero, for "did anything
  accumulate here" checks where a relative tolerance would be meaningless
  (relative-to-zero is always zero).

The default tolerances are deliberately named constants so call sites can
reference, widen, or narrow them explicitly instead of sprinkling magic
``1e-9`` literals.
"""

from __future__ import annotations

import math

#: Default relative tolerance for comparing two computed floats.  Chosen
#: to sit far above the rounding noise of the double-precision pipelines
#: in this codebase (score sums, distances) while still resolving every
#: genuinely distinct score the solvers can produce.
DEFAULT_REL_TOL: float = 1e-9

#: Default absolute tolerance, used near zero where relative tolerance
#: degenerates.  Scores in this codebase are weighted counts of order
#: one or larger, so anything below this is accumulated rounding noise.
DEFAULT_ABS_TOL: float = 1e-12


def float_eq(a: float, b: float, *, rel_tol: float = DEFAULT_REL_TOL,
             abs_tol: float = DEFAULT_ABS_TOL) -> bool:
    """True when ``a`` and ``b`` are equal up to the audited tolerances.

    Symmetric (``float_eq(a, b) == float_eq(b, a)``) and safe at zero
    thanks to the absolute floor::

        >>> float_eq(0.1 + 0.2, 0.3)
        True
        >>> float_eq(1.0, 1.0 + 1e-6)
        False
        >>> float_eq(0.0, 1e-15)
        True
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def float_ne(a: float, b: float, *, rel_tol: float = DEFAULT_REL_TOL,
             abs_tol: float = DEFAULT_ABS_TOL) -> bool:
    """Negation of :func:`float_eq` with the same audited tolerances."""
    return not math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def near_zero(x: float, *, tol: float = DEFAULT_ABS_TOL) -> bool:
    """True when ``x`` is indistinguishable from zero at tolerance ``tol``.

    Absolute-only by design: use this instead of ``x == 0.0`` whenever
    ``x`` is the result of arithmetic (sums, differences) rather than a
    value assigned literally::

        >>> near_zero(0.0)
        True
        >>> near_zero(5e-13)
        True
        >>> near_zero(1e-6)
        False
    """
    return abs(x) <= tol
