"""Planar geometry kernel for the MaxBRkNN reproduction.

This package implements, from scratch, every geometric primitive the
MaxFirst and MaxOverlap algorithms need:

* :class:`~repro.geometry.point.Point` — immutable 2-D points.
* :class:`~repro.geometry.rect.Rect` — axis-aligned rectangles (quadrants).
* :class:`~repro.geometry.circle.Circle` — closed disks (nearest location
  circles), circle/circle intersection points and circle/rectangle
  predicates.
* :class:`~repro.geometry.arcs.Arc` and
  :class:`~repro.geometry.arcs.ArcRegion` — circular-arc polygons, the
  representation of optimal regions (intersections of closed disks).
* :func:`~repro.geometry.intersection.intersect_disks` — robust
  construction of the intersection of a set of closed disks.
* :mod:`~repro.geometry.tolerance` — the audited float-comparison
  helpers (:func:`~repro.geometry.tolerance.float_eq`,
  :func:`~repro.geometry.tolerance.near_zero`) every tolerance-based
  comparison in the stack must route through (rule ``RPR002`` of
  :mod:`repro.analysis`).

The kernel works with plain ``float`` scalars so it has no mandatory numpy
dependency in the scalar path; the batch (structure-of-arrays) versions of
the predicates live in :mod:`repro.index.circleset`.
"""

from repro.geometry.arcs import Arc, ArcRegion
from repro.geometry.circle import (
    Circle,
    circle_circle_intersection,
    circle_contains_rect,
    circle_intersects_rect,
)
from repro.geometry.intersection import DisjointDisksError, intersect_disks
from repro.geometry.point import Point, distance, distance_squared, midpoint
from repro.geometry.rect import Rect
from repro.geometry.tolerance import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    float_eq,
    float_ne,
    near_zero,
)

__all__ = [
    "Arc",
    "ArcRegion",
    "Circle",
    "DEFAULT_ABS_TOL",
    "DEFAULT_REL_TOL",
    "DisjointDisksError",
    "Point",
    "Rect",
    "circle_circle_intersection",
    "circle_contains_rect",
    "circle_intersects_rect",
    "distance",
    "distance_squared",
    "float_eq",
    "float_ne",
    "intersect_disks",
    "midpoint",
    "near_zero",
]
