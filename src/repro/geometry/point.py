"""Immutable 2-D points and elementary distance helpers.

The scalar geometry kernel deliberately avoids numpy: a single point
operation in numpy costs more in array overhead than the arithmetic it
performs.  Batch operations over many points live in
:mod:`repro.index.circleset` instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the Euclidean plane.

    ``Point`` is hashable and immutable so it can key dictionaries and sit
    in sets (e.g. deduplicating circle intersection points).

    >>> Point(1.0, 2.0) + Point(0.5, 0.5)
    Point(x=1.5, y=2.5)
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length of the position vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def angle_to(self, other: "Point") -> float:
        """Angle of the vector from ``self`` to ``other`` in ``[-pi, pi]``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` — handy for numpy interchange."""
        return (self.x, self.y)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """True when both coordinates agree within ``tol`` (absolute)."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol


def distance(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between raw coordinate pairs.

    The raw-coordinate form avoids constructing :class:`Point` objects in
    hot loops.
    """
    return math.hypot(ax - bx, ay - by)


def distance_squared(ax: float, ay: float, bx: float, by: float) -> float:
    """Squared Euclidean distance between raw coordinate pairs."""
    dx = ax - bx
    dy = ay - by
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the segment ``ab``."""
    return Point((a.x + b.x) * 0.5, (a.y + b.y) * 0.5)
