"""MaxFirst — Algorithm 1 (Phase I) and the full two-phase solver.

Phase I recursively partitions the data space into quadrants, always
expanding the quadrant with the largest upper bound ``m̂ax``.  A quadrant is

* **split** while its ``m̂ax`` exceeds the best proven lower bound
  ``MaxMin`` (or equals it but the quadrant is not yet consistent and no
  found region explains it),
* **pruned** by Theorem 2 when ``m̂ax < MaxMin``,
* **pruned** by Theorem 3 when its intersecting NLCs are a subset of a
  found region's covering NLCs (its optimal region was already discovered),
* **accepted** when it is *consistent* (``m̂ax == m̂in``) at the maximum.

Phase II (:mod:`repro.core.region`) grows each accepted quadrant into the
actual optimal region.

Region semantics and the intersection-point problem
---------------------------------------------------
The problem asks for *maximal consistent regions* (full-dimensional), so
the optimum is the essential supremum of ``total_score`` — a point where
many circumferences merely meet does not count (see
:mod:`repro.core.scoring`).  ``Q.I`` therefore uses open-disk
intersection: a disk grazing a quadrant at a boundary point is excluded.
This is what lets quadrants next to a circle-coincidence point become
consistent, exactly as the paper's termination proof requires.

When every NLC in ``Q.I - Q.C`` passes through one common point ``p``
inside ``Q`` (Algorithm 1's intersection-point problem — pervasive in
practice, because every customer's ``k``-th NLC passes through its
``k``-th nearest site), the regular centre split makes slow progress.
Following the pseudocode we detect the situation after ``m`` consecutive
splits that leave ``Q.I`` and ``m̂in`` unchanged and split at ``p``; the
through-circles then graze the children only at their corner ``p`` and
drop out of their ``Q.I`` sets.  A resolution guard force-closes quadrants
below float resolution (near-coincidences tighter than the predicate
noise floor); it reports the quadrant's proven lower bound and counts the
event in ``stats.resolution_closed``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.bounds import ClassificationBackend, make_backend
from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.quadrant import MaxFirstStats, Quadrant, _MutableStats
from repro.core.refine import refine_quadrant
from repro.core.region import compute_optimal_region
from repro.core.result import MaxBRkNNResult
from repro.geometry.circle import circle_circle_intersection
from repro.geometry.intersection import disks_common_point
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.obs.trace import span

# Theorem 3 is load-bearing: without it, quadrants straddling a found
# region's boundary re-split forever (the boundary is a curve — its
# tessellation grows exponentially with depth), so there is no "off" mode.
_THEOREM3_MODES = ("subset", "equality")

# "batched" classifies a split's whole child frontier in one kernel call
# and runs Theorem 3 on cached cover bitmaps; "legacy" is the original
# one-classify-per-child / frozenset-algebra hot path, kept as the
# baseline arm of benchmarks/bench_phase1_hotpath.py (both paths produce
# identical scores, regions, and stats — asserted by tests and by the
# harness itself).
_HOTPATHS = ("batched", "legacy")

# Unit roundoff of float64; sizes the Theorem 3 score-sum margin so it
# dominates worst-case summation error for any cover size.
_FLOAT_EPS = float(np.finfo(np.float64).eps)


class _FoundCovers:
    """Registry of found-region covers behind the Theorem 3 tests.

    The solver consults it on (almost) every pop, so representation
    matters.  In array mode each cover is stored as a membership bitmap
    over the NLC index space plus its size and score sum; the subset
    test ``Q.I ⊆ cover`` is then a vectorised gather-and-all with two
    early exits — on cardinality (a strictly larger ``Q.I`` cannot be a
    subset; exact) and on score sums (``m̂ax`` above the cover's sum
    rules the subset out for non-negative scores; guarded by a margin
    sized from the summand counts so it provably dominates worst-case
    float-summation error).  Frozenset mode reproduces the
    original per-pop ``frozenset`` algebra for the ``legacy`` hot path.
    """

    def __init__(self, n_nlcs: int, use_arrays: bool,
                 scores_nonneg: bool) -> None:
        self._n = n_nlcs
        self._use_arrays = use_arrays
        self._scores_nonneg = scores_nonneg
        self._keys: set[tuple[int, ...]] = set()
        self._masks: list[np.ndarray] = []
        self._sizes: list[int] = []
        self._sums: list[float] = []
        self._frozen: list[frozenset[int]] = []

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, quad: Quadrant) -> bool:
        """Record the quadrant's cover; False when already present."""
        key = quad.cover_key()
        if key in self._keys:
            return False
        self._keys.add(key)
        if self._use_arrays:
            mask = np.zeros(self._n, dtype=bool)
            mask[quad.containing] = True
            self._masks.append(mask)
            self._sizes.append(len(key))
            self._sums.append(quad.min_hat)
        else:
            self._frozen.append(frozenset(key))
        return True

    def seed(self, cover: tuple[int, ...], score_sum: float,
             members: tuple[int, ...] | None = None) -> bool:
        """Pre-register a cover found *outside* this search (another tile).

        Semantically identical to :meth:`add`: the caller asserts that
        ``cover`` (sorted NLC indices in *this search's* index space) is
        the cover of a region some shard already accepted, with
        ``score_sum`` its ``m̂in`` sum over the same score values.
        Theorem 3 then prunes this search's quadrants whose ``Q.I`` the
        cover absorbs — the cross-tile analogue of the in-search test,
        and sound for the same reason: a tied region inside such a
        quadrant must equal the seeded region, which the merge step
        already reports.

        A search running over a row *slice* of the store passes
        ``members``: the subset of ``cover`` that falls inside its
        window (the rest of the cover shifts out of range and cannot be
        masked).  ``cover`` itself keeps every member, so the dedupe
        key, the cardinality early exit, and the score-sum margin are
        those of the full cover — any ``Q.I`` of this search lies
        wholly inside the window, making the membership test over
        ``members`` equivalent to the full-set test, bit for bit.
        """
        if cover in self._keys:
            return False
        self._keys.add(cover)
        if members is None:
            members = cover
        if self._use_arrays:
            mask = np.zeros(self._n, dtype=bool)
            if members:
                mask[np.asarray(members, dtype=np.int64)] = True
            self._masks.append(mask)
            self._sizes.append(len(cover))
            self._sums.append(float(score_sum))
        else:
            self._frozen.append(frozenset(cover))
        return True

    def prunes(self, quad: Quadrant, mode: str) -> bool:
        """The Theorem 3 test: is ``Q.I`` a subset of (or, in
        ``equality`` mode, equal to) a found cover?"""
        if not self._keys:
            return False
        if not self._use_arrays:
            inter = frozenset(int(i) for i in quad.intersecting)
            if mode == "equality":
                return any(inter == cover for cover in self._frozen)
            return any(inter <= cover for cover in self._frozen)
        inter = quad.intersecting
        m = inter.shape[0]
        if mode == "equality":
            return any(size == m and bool(mask[inter].all())
                       for mask, size in zip(self._masks, self._sizes))
        max_hat = quad.max_hat
        for mask, size, cover_sum in zip(self._masks, self._sizes,
                                         self._sums):
            if m > size:
                continue
            if self._scores_nonneg:
                # A true subset forces sum(Q.I) <= cover_sum in exact
                # arithmetic.  Each float sum of n non-negative terms
                # errs by at most (n-1)·eps·sum (sequential; pairwise is
                # tighter), so a margin of 2·(|Q.I| + |cover|)·eps times
                # the larger magnitude can never skip a genuine
                # superset, whatever the cover size.
                margin = (2.0 * (m + size) * _FLOAT_EPS
                          * max(1.0, cover_sum, max_hat))
                if max_hat > cover_sum + margin:
                    continue
            if mask[inter].all():
                return True
        return False

    def any_superset(self, containing: np.ndarray,
                     clique: Iterable[int]) -> bool:
        """True when some found cover contains ``Q.C ∪ clique`` — the
        generalized Theorem 3 used by the compatibility refinement."""
        if not self._keys:
            return False
        if not self._use_arrays:
            combined = (frozenset(int(i) for i in containing)
                        | frozenset(clique))
            return any(combined <= cover for cover in self._frozen)
        clique_idx = np.asarray(list(clique), dtype=np.int64)
        return any(bool(mask[containing].all())
                   and bool(mask[clique_idx].all())
                   for mask in self._masks)


class MaxFirst:
    """The MaxFirst solver for the generalized MaxBRkNN problem.

    Parameters
    ----------
    m_threshold:
        The paper's ``m``: consecutive same-frontier splits tolerated
        before checking for the intersection-point problem.  Any positive
        value is correct; Figure 8 shows performance is insensitive to it
        (paper default: 4).
    backend:
        ``"vector"`` (hierarchical numpy classification, default) or
        ``"rtree"`` (paper-literal R-tree range queries).
    theorem3:
        ``"subset"`` (default; the full strength of Theorem 3) or
        ``"equality"`` (the literal pseudocode test ``Q'.C == Q.I``).
        Theorem 3 cannot be disabled: it is what terminates the
        tessellation along a found region's boundary.
    top_t:
        Return the ``t`` best *score tiers* of distinct consistent regions
        instead of only the maximum (an extension; ``top_t=1`` is the
        paper's algorithm).  Every location in a returned region attains
        at least that region's score; tiers below the maximum may be
        plateaus adjacent to a better region.  With ``top_t > 1`` the
        Theorem 2 threshold is the ``t``-th best consistent score found so
        far (conservative but exact), and found-region pruning runs on
        every pop.
    tie_tol:
        Relative tolerance for score-equality tests (floating point stands
        in for the paper's exact reals).
    resolution_fraction:
        The solver's geometric resolution as a fraction of the space
        extent: quadrants whose smaller dimension reaches it are closed
        with their proven lower bound (counted in
        ``stats.resolution_closed``), and disk/quadrant overlaps thinner
        than it are treated as non-overlaps (the graze tolerance).
        Features below the resolution — 1e-9 of the data extent by
        default — are beyond any physical siting decision.
    degeneracy_depth:
        Quadrants at or beyond this depth always run the degeneracy
        machinery (common-point detection and compatibility refinement)
        on every split.  The paper's same-frontier counter alone starves
        when many degenerate spots interleave in the heap; depth is a
        robust secondary trigger — healthy searches rarely exceed depth
        ~16, degeneracy chases exceed 25.
    nlc_method / keep_zero_score_nlcs:
        Passed through to :func:`repro.core.nlc.build_nlcs`.
    hotpath:
        ``"batched"`` (default): classify each split's whole child
        frontier in one batched kernel call and run Theorem 3 against
        cached cover bitmaps.  ``"legacy"``: the original per-child
        classification and per-pop frozenset algebra — kept solely as
        the baseline arm of ``benchmarks/bench_phase1_hotpath.py``; both
        paths produce identical results and stats.
    epsilon:
        Anytime mode (``top_t == 1`` only).  With ``epsilon > 0`` Phase I
        stops at the first pop whose ``m̂ax`` — the certified global
        upper bound, by the best-first heap order — is within a factor
        ``1 + epsilon`` of the proven lower bound ``MaxMin``: the
        returned score is a certified ``1/(1+epsilon)``-approximation of
        the optimum, reached without tessellating the last plateau to
        the resolution floor.  The certificate itself is exposed as
        :attr:`last_upper_bound` after every solve (with ``epsilon == 0``
        it equals the exact score).  ``epsilon = 0`` (default) is the
        paper's exact algorithm.
    max_iterations:
        Safety valve on heap pops; ``None`` derives a generous bound from
        the instance size.
    phase2_workers:
        ``None`` (default) grows every region serially in-process.  A
        positive integer routes Phase II for two or more distinct covers
        through a :class:`repro.engine.pool.PersistentPool` of that many
        workers against a shared-memory NLC store — worth it for large
        ``top_t``, where many independent region growths dominate the
        tail of the solve.  Results and the deterministic work counters
        are identical to the serial path (the transport-only
        ``phase2_pool_tasks`` counter records the dispatch); a broken
        pool degrades to the serial path with a ``RuntimeWarning``.
        Call :meth:`close` (or use the solver as a context manager) to
        shut the pool down.
    """

    def __init__(self, m_threshold: int = 4, backend: str = "vector",
                 theorem3: str = "subset", top_t: int = 1,
                 tie_tol: float = 1e-9,
                 resolution_fraction: float = 1e-9,
                 degeneracy_depth: int = 20,
                 nlc_method: str = "auto",
                 keep_zero_score_nlcs: bool = False,
                 hotpath: str = "batched",
                 epsilon: float = 0.0,
                 max_iterations: int | None = None,
                 phase2_workers: int | None = None) -> None:
        if m_threshold < 1:
            raise ValueError("m_threshold must be positive")
        if degeneracy_depth < 1:
            raise ValueError("degeneracy_depth must be positive")
        if theorem3 not in _THEOREM3_MODES:
            raise ValueError(
                f"theorem3 must be one of {_THEOREM3_MODES}, got {theorem3!r}")
        if hotpath not in _HOTPATHS:
            raise ValueError(
                f"hotpath must be one of {_HOTPATHS}, got {hotpath!r}")
        if top_t < 1:
            raise ValueError("top_t must be positive")
        if phase2_workers is not None and phase2_workers < 1:
            raise ValueError("phase2_workers must be positive (or None)")
        if tie_tol < 0 or resolution_fraction < 0:
            raise ValueError("tolerances must be non-negative")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if epsilon > 0 and top_t != 1:
            raise ValueError(
                "epsilon (anytime mode) requires top_t == 1: the top-t "
                "frontier is not a global lower bound, so an early stop "
                "certifies nothing about the lower tiers")
        self.m_threshold = m_threshold
        self.backend_name = backend
        self.theorem3 = theorem3
        self.top_t = top_t
        self.tie_tol = tie_tol
        self.resolution_fraction = resolution_fraction
        self.degeneracy_depth = degeneracy_depth
        self.nlc_method = nlc_method
        self.keep_zero_score_nlcs = keep_zero_score_nlcs
        self.hotpath = hotpath
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.phase2_workers = phase2_workers
        self._phase2_pool: object | None = None
        #: Certified global upper bound of the most recent Phase I run:
        #: the last popped ``m̂ax`` at an anytime stop, or the final
        #: ``MaxMin`` on natural completion (then it IS the exact score).
        #: Deliberately an attribute, not a ``MaxFirstStats`` field — the
        #: stats schema is identity-checked across execution modes.
        self.last_upper_bound: float = 0.0

    def close(self) -> None:
        """Shut the Phase II worker pool down (idempotent no-op when
        ``phase2_workers`` is unset or the pool never started)."""
        pool, self._phase2_pool = self._phase2_pool, None
        if pool is not None:
            pool.close()  # type: ignore[attr-defined]

    def __enter__(self) -> "MaxFirst":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def solve(self, problem: MaxBRkNNProblem) -> MaxBRkNNResult:
        """Run the full pipeline: NLC construction, Phase I, Phase II."""
        t0 = time.perf_counter()
        nlcs = build_nlcs(problem, method=self.nlc_method,
                          keep_zero_score=self.keep_zero_score_nlcs)
        t1 = time.perf_counter()
        if len(nlcs) == 0:
            # Legal degenerate instance (e.g. all weights zero): nothing
            # can score anywhere.
            return MaxBRkNNResult(
                score=0.0, regions=(), nlcs=nlcs,
                space=problem.data_bounds(),
                stats=_MutableStats().freeze(),
                timings={"nlc": t1 - t0, "phase1": 0.0, "phase2": 0.0})
        result = self.solve_nlcs(nlcs)
        result.timings["nlc"] = t1 - t0
        return result

    def solve_nlcs(self, nlcs: CircleSet,
                   space: Rect | None = None) -> MaxBRkNNResult:
        """Solve over an explicit NLC set (skips pre-processing).

        ``space`` defaults to the bounding box of the NLCs — no location
        outside it can score above zero.
        """
        if len(nlcs) == 0:
            raise ValueError("cannot solve over an empty NLC set")
        if space is None:
            space = nlc_space(nlcs)

        t0 = time.perf_counter()
        accepted, max_min, stats = self._phase1(nlcs, space)
        t1 = time.perf_counter()
        regions = self.build_regions(accepted, max_min, nlcs)
        t2 = time.perf_counter()

        return MaxBRkNNResult(
            score=max_min, regions=tuple(regions), nlcs=nlcs, space=space,
            stats=stats.freeze(),
            timings={"phase1": t1 - t0, "phase2": t2 - t1})

    # ------------------------------------------------------------------ #
    # Phase II (region construction over accepted quadrants)
    # ------------------------------------------------------------------ #

    def build_regions(self, accepted: list[Quadrant], max_min: float,
                      nlcs: CircleSet) -> list:
        """Phase II: grow the optimal regions of the accepted quadrants.

        Deduplicates by cover identity (many accepted quadrants tile one
        region) and drops superseded scores.  Exposed separately so the
        engine layer can merge accepted quadrants from several Phase I
        shards before growing regions exactly once per distinct cover.
        """
        tol = self.tie_tol * max(1.0, abs(max_min))
        seen_covers: set[tuple[int, ...]] = set()
        with span("phase2/build_regions", accepted=len(accepted)):
            pending = []
            for quad in accepted:
                if quad.min_hat < max_min - tol and self.top_t == 1:
                    continue  # superseded (defensive; see module docstring)
                key = quad.cover_key()
                if key in seen_covers:
                    continue
                seen_covers.add(key)
                pending.append(quad)
            regions = None
            if self.phase2_workers is not None and len(pending) > 1:
                regions = self._build_regions_pooled(pending, nlcs)
            if regions is None:
                regions = [
                    compute_optimal_region(quad.rect, quad.containing,
                                           nlcs, score=quad.min_hat)
                    for quad in pending
                ]
            regions.sort(key=lambda r: -r.score)
            if self.top_t > 1:
                regions = _keep_top_t(regions, self.top_t, tol)
        return regions

    def _build_regions_pooled(self, pending: list,
                              nlcs: CircleSet) -> list | None:
        """Grow ``pending``'s regions through the worker pool, or return
        ``None`` to let the caller fall back to the serial path.

        The engine-layer import is lazy — the core layer only touches
        :mod:`repro.engine.pool` when ``phase2_workers`` is set.  Worker
        results come back in submission order, so the serial and pooled
        paths hand the caller identically ordered region lists.
        """
        import pickle
        import warnings
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine.pool import PersistentPool, run_phase2_pool

        pool = self._phase2_pool
        if not isinstance(pool, PersistentPool):
            pool = PersistentPool(max_workers=int(self.phase2_workers or 1))
            self._phase2_pool = pool
        quads = [
            ((quad.rect.xmin, quad.rect.ymin,
              quad.rect.xmax, quad.rect.ymax),
             tuple(int(i) for i in quad.containing),
             float(quad.min_hat))
            for quad in pending
        ]
        try:
            return run_phase2_pool(pool, nlcs, quads)
        # A dead worker (OOM kill, interpreter crash) or an unpicklable
        # payload must not take the solve down: drop the executor and
        # grow the regions serially — identical results, just slower.
        except (BrokenProcessPool, pickle.PicklingError) as exc:
            # repro: fallback(pooled Phase II degrades to the serial
            # in-process region growth on worker/pickling failure)
            warnings.warn(
                f"Phase II pool failed ({exc!r}); growing regions "
                "serially (identical results, slower)",
                RuntimeWarning, stacklevel=2)
            pool.discard()
            self._phase2_pool = None
            return None

    # ------------------------------------------------------------------ #
    # Phase I
    # ------------------------------------------------------------------ #

    def run_phase1(self, nlcs: CircleSet, space: Rect, *,
                   backend: ClassificationBackend | None = None,
                   resolution: float | None = None,
                   initial_bound: float = 0.0,
                   bound_sync: Callable[[float], float] | None = None,
                   sync_interval: int = 0,
                   seed_covers: Iterable[tuple[tuple[int, ...], float]]
                   | None = None,
                   roots: "Sequence[tuple[Rect, np.ndarray]] | None" = None,
                   tessellation: "list[tuple[Rect, float, float]] | None"
                   = None
                   ) -> tuple[list[Quadrant], float, MaxFirstStats]:
        """Public staged entry to Phase I (the engine layer's hook).

        Parameters beyond :meth:`solve_nlcs`'s:

        backend:
            A prebuilt classification backend (so the pipeline layer can
            time index construction separately).  Must have been built
            with ``graze_tol == resolution``.
        resolution:
            Geometric resolution override.  A tile shard must run at the
            *global* space's resolution, not its tile's, or quadrant
            classification diverges from the single-process run.
        initial_bound:
            A proven global lower bound to seed ``MaxMin`` with (Theorem 2
            prunes against it from the first pop).  Only sound with
            ``top_t == 1``.
        bound_sync:
            Optional callable ``f(local_max_min) -> global_max_min``
            polled every ``sync_interval`` pops: publishes the local bound
            and returns the best bound any shard has proven.  Adopting it
            is Theorem-2-sound — the returned value is witnessed by a real
            quadrant in some shard.
        seed_covers:
            ``(cover, score_sum)`` pairs of regions other shards already
            accepted (sorted NLC indices plus their ``m̂in`` sum); a
            slice-attached caller appends a third ``members`` element
            per entry (see :meth:`_FoundCovers.seed`).
            They enter the Theorem 3 registry before the first pop, so
            this search never re-tessellates a region an earlier tile
            discovered — the main cost of naive tile sharding.  Only
            sound with ``top_t == 1`` and with index/score arrays
            identical to the seeding search's (the merge step must
            report the seeded regions).
        roots:
            ``(rect, candidate_indices)`` pairs replacing the single
            ``space`` root: every pair is classified and pushed onto one
            shared frontier, so the search pops the globally most
            promising quadrant across all of them — a tile partition run
            this way shares its ``MaxMin`` and Theorem 3 registry from
            the first pop instead of per-tile, which is what keeps
            serial sharding's overhead down to the cut tessellation.
            The rects must tile ``space`` (correctness needs full
            coverage) and each candidate set must contain every NLC that
            can influence classification inside its rect (the planner's
            halo invariant).  Only sound with ``top_t == 1``.
        tessellation:
            Optional sink list.  When given, every quadrant the search
            *finishes* — accepted, Theorem-2/3-pruned,
            refinement-pruned, resolution-closed, or still enqueued at
            an anytime stop — is appended as ``(rect, m̂in, m̂ax)``.
            Finished quadrants tile the searched space, so the sink is a
            complete bracketing of the influence surface: ``m̂in`` holds
            everywhere inside the rect, ``m̂ax`` bounds everything
            inside it.  :mod:`repro.core.heatmap` rasterises this onto a
            tile grid.  Entries may overlap (a refinement-requeued
            quadrant terminates twice); consumers must combine by max.
            Capture changes no search decision — results and stats are
            bit-identical with or without a sink.
        """
        with span("phase1/search", nlcs=len(nlcs)):
            accepted, max_min, stats = self._phase1(
                nlcs, space, backend=backend, resolution=resolution,
                initial_bound=initial_bound, bound_sync=bound_sync,
                sync_interval=sync_interval, seed_covers=seed_covers,
                roots=roots, tessellation=tessellation)
        return accepted, max_min, stats.freeze()

    def _phase1(self, nlcs: CircleSet, space: Rect, *,
                backend: ClassificationBackend | None = None,
                resolution: float | None = None,
                initial_bound: float = 0.0,
                bound_sync: Callable[[float], float] | None = None,
                sync_interval: int = 0,
                seed_covers: Iterable[tuple[tuple[int, ...], float]]
                | None = None,
                roots: "Sequence[tuple[Rect, np.ndarray]] | None" = None,
                tessellation: "list[tuple[Rect, float, float]] | None"
                = None
                ) -> tuple[list[Quadrant], float, _MutableStats]:
        stats = _MutableStats()
        if resolution is None:
            resolution = (max(space.width, space.height)
                          * self.resolution_fraction)
        # The geometric resolution doubles as the graze tolerance of the
        # quadrant predicates (see CircleSet.classify_rect): overlaps
        # thinner than the resolution are treated as non-overlaps.
        if backend is None:
            backend = make_backend(self.backend_name, nlcs,
                                   graze_tol=resolution)
        if ((initial_bound or bound_sync is not None
                or seed_covers is not None or roots is not None)
                and self.top_t != 1):
            raise ValueError(
                "external state (initial_bound/bound_sync/seed_covers/"
                "roots) requires top_t == 1: the top-t frontier is not a "
                "global bound and seeded covers would mask lower tiers")
        limit = self.max_iterations
        if limit is None:
            limit = 400 * len(nlcs) + 200_000

        counter = itertools.count()  # heap tie-breaker
        heap: list[tuple[float, int, Quadrant]] = []
        sink = tessellation  # terminal-quadrant capture (None = off)
        max_min = float(initial_bound)
        # For top_t > 1 the Theorem 2 threshold is the t-th best consistent
        # score (tracked as a min-heap of the best t); for top_t == 1 it is
        # the paper's MaxMin (raised by any quadrant's m̂in).
        frontier: list[float] = []
        accepted: list[Quadrant] = []
        batched = self.hotpath == "batched"
        found_covers = _FoundCovers(
            len(nlcs), use_arrays=batched,
            scores_nonneg=bool(len(nlcs))
            and bool((nlcs.scores >= 0.0).all()))
        if seed_covers is not None:
            # 2-tuples ``(cover, score_sum)`` from whole-set callers;
            # slice-attached workers add a third ``members`` element
            # (see :meth:`_FoundCovers.seed`).
            for entry in seed_covers:
                found_covers.seed(*entry)

        # The best lower-bound witness seen so far: a quadrant whose m̂in
        # raised MaxMin.  An anytime stop accepts it when nothing on the
        # accepted list ties MaxMin yet, so the reported score always has
        # an in-search region behind it (an externally seeded
        # initial_bound has no local witness; its regions live with the
        # seeding caller, which merges them back — see repro.serve).
        incumbent: Quadrant | None = None

        def push(quad: Quadrant) -> None:
            nonlocal max_min, incumbent
            stats.generated += 1
            stats.max_depth = max(stats.max_depth, quad.depth)
            if self.top_t == 1:
                if quad.min_hat > max_min:
                    max_min = quad.min_hat
                    incumbent = quad
            heapq.heappush(heap, (-quad.max_hat, next(counter), quad))

        with span("phase1/classify_root"):
            if roots is None:
                push(backend.classify(space, backend.root_candidates(),
                                      depth=0))
            else:
                for tile_rect, tile_candidates in roots:
                    push(backend.classify(tile_rect, tile_candidates,
                                          depth=0))

        prev_split: Quadrant | None = None
        same_frontier_count = 0
        pops = 0

        # Set REPRO_MAXFIRST_DEBUG=<N> to log search progress every N pops
        # (diagnosing slow convergence on adversarial instances).
        # repro: env-read(diagnostic logging cadence only — it cannot
        # change any computed value, so worker/parent divergence on this
        # variable is harmless by construction)
        debug = int(os.environ.get("REPRO_MAXFIRST_DEBUG", "0"))
        while heap:
            pops += 1
            if (bound_sync is not None and sync_interval
                    and pops % sync_interval == 0):
                # Exchange bounds with the other shards: publish ours,
                # adopt theirs when better.  Any returned value is a
                # min_hat some shard proved, so Theorem 2 stays sound.
                external = bound_sync(max_min)
                if external > max_min:
                    max_min = external
            if debug and pops % debug == 0:
                top = heap[0][2]
                print(f"[maxfirst] pops={pops} heap={len(heap)} "
                      f"maxmin={max_min:.4f} top(max={top.max_hat:.4f} "
                      f"min={top.min_hat:.4f} depth={top.depth} "
                      f"width={top.rect.width:.2e} "
                      f"nI={len(top.intersecting)}) "
                      f"accepted={len(accepted)}")
            if pops > limit:
                raise RuntimeError(
                    f"MaxFirst did not converge within {limit} iterations "
                    f"(heap size {len(heap)}, MaxMin {max_min}); this "
                    "indicates a degenerate instance below the resolution "
                    "guard — raise resolution_fraction or max_iterations")
            _, _, quad = heapq.heappop(heap)
            tol = self.tie_tol * max(1.0, abs(max_min))

            if self.epsilon > 0.0:
                # The heap is ordered by m̂ax, so the popped quadrant's
                # m̂ax bounds EVERY unexplored location: once it sinks to
                # MaxMin · (1 + ε) the incumbent is a certified
                # 1/(1+ε)-approximation and the search may stop.  Guarded
                # on a positive MaxMin — a zero lower bound certifies a
                # ratio of nothing (the m̂ax ≤ tol case exits through the
                # exact tests on its own).
                if (max_min > 0.0
                        and quad.max_hat <= max_min * (1.0 + self.epsilon)
                        + tol):
                    if (incumbent is not None
                            and not any(q.min_hat >= max_min - tol
                                        for q in accepted)):
                        self._accept(incumbent, accepted, found_covers,
                                     frontier, stats)
                    if sink is not None:
                        # Everything unexplored is terminal at an
                        # anytime stop: the popped quadrant plus the
                        # whole remaining frontier.
                        sink.append((quad.rect, quad.min_hat,
                                     quad.max_hat))
                        for _, _, rest in heap:
                            sink.append((rest.rect, rest.min_hat,
                                         rest.max_hat))
                    self.last_upper_bound = quad.max_hat
                    return accepted, max_min, stats

            if quad.max_hat < max_min - tol:
                stats.pruned_theorem2 += 1  # Theorem 2
                if sink is not None:
                    sink.append((quad.rect, quad.min_hat, quad.max_hat))
                continue

            if quad.max_hat <= max_min + tol:
                # m̂ax == MaxMin: Theorem-3 prune, result, or keep
                # splitting.  The Theorem 3 test runs before the
                # consistency test (the pseudocode orders them the other
                # way): a consistent quadrant of an already-found region
                # has Q.I equal to that region's cover, so testing
                # Q.I ⊆ cover first prunes the thousands of duplicate
                # acceptances that interior quadrants of a large optimal
                # region would otherwise produce, and a *new* tied region
                # can never be subset-pruned (equal positive score sums
                # force equal covers).
                if self._theorem3_prunes(quad, found_covers):
                    stats.pruned_theorem3 += 1
                    if sink is not None:
                        sink.append((quad.rect, quad.min_hat,
                                     quad.max_hat))
                    continue
                if quad.min_hat >= quad.max_hat - tol:
                    self._accept(quad, accepted, found_covers, frontier,
                                 stats)
                    if sink is not None:
                        sink.append((quad.rect, quad.min_hat,
                                     quad.max_hat))
                    if self.top_t > 1:
                        max_min = self._top_t_threshold(frontier)
                    continue
            elif self.top_t > 1:
                # In top-t mode the Theorem 2 threshold stays low until t
                # distinct regions exist, so — unlike the t=1 pseudocode —
                # found-region pruning and acceptance must fire on every
                # pop or the area around each found region is tessellated
                # to machine precision.
                if self._theorem3_prunes(quad, found_covers):
                    stats.pruned_theorem3 += 1
                    if sink is not None:
                        sink.append((quad.rect, quad.min_hat,
                                     quad.max_hat))
                    continue
                if quad.min_hat >= quad.max_hat - tol:
                    self._accept(quad, accepted, found_covers, frontier,
                                 stats)
                    if sink is not None:
                        sink.append((quad.rect, quad.min_hat,
                                     quad.max_hat))
                    max_min = self._top_t_threshold(frontier)
                    continue

            # --- split ------------------------------------------------ #
            # Close at the resolution floor.  The test is on the SMALLER
            # dimension: point splits can produce sliver quadrants whose
            # aspect ratio center-splitting preserves, and a sliver
            # thinner than the resolution cannot host a feature above the
            # resolution — whatever optimal region crosses it extends
            # into (and is found via) its full-size neighbours.
            if min(quad.rect.width, quad.rect.height) <= resolution:
                stats.resolution_closed += 1
                # Accepted with its proven lower bound as the score; the
                # resolution_closed counter flags the imprecision.
                self._accept(quad, accepted, found_covers, frontier,
                             stats)
                if sink is not None:
                    sink.append((quad.rect, quad.min_hat, quad.max_hat))
                if self.top_t > 1:
                    max_min = self._top_t_threshold(frontier)
                continue

            if prev_split is not None and quad.same_frontier(prev_split):
                same_frontier_count += 1
            else:
                same_frontier_count = 0

            # Degeneracy handling fires on the paper's trigger (m
            # consecutive same-frontier splits), on depth (interleaved
            # pops starve the global counter when many degenerate spots
            # coexist), and immediately for re-queued refined quadrants.
            split_point = None
            triggered = (quad.refined
                         or same_frontier_count >= self.m_threshold
                         or quad.depth >= self.degeneracy_depth)
            if triggered:
                stats.intersection_checks += 1
                split_point = self._common_point_inside(quad, nlcs,
                                                        resolution)
                if same_frontier_count >= self.m_threshold:
                    same_frontier_count = 0
                if split_point is None:
                    action, requeue = self._refinement_action(
                        quad, nlcs, max_min, tol, resolution,
                        found_covers, stats)
                    if action == "prune":
                        prev_split = quad
                        if sink is not None:
                            sink.append((quad.rect, quad.min_hat,
                                         quad.max_hat))
                        continue
                    if action == "requeue":
                        prev_split = quad
                        heapq.heappush(
                            heap,
                            (-requeue.max_hat, next(counter), requeue))
                        continue

            prev_split = quad
            stats.splits += 1
            if split_point is not None:
                px, py = split_point
                stats.point_splits += 1
                children = quad.rect.split_at(px, py)
            else:
                children = quad.rect.split_center()
            child_rects = _echo_free_children(quad.rect, children)
            if batched:
                # One kernel call classifies the whole child frontier
                # against the shared parent candidates; the bookkeeping
                # runs batched too (max_min is only read at pop time, so
                # raising it before the pushes is equivalent to the
                # interleaved per-child updates).
                children_q = backend.classify_batch(
                    child_rects, quad.intersecting, quad.depth + 1)
                stats.generated += len(children_q)
                if quad.depth + 1 > stats.max_depth:
                    stats.max_depth = quad.depth + 1
                if self.top_t == 1:
                    for child in children_q:
                        if child.min_hat > max_min:
                            max_min = child.min_hat
                            incumbent = child
                for child in children_q:
                    heapq.heappush(
                        heap, (-child.max_hat, next(counter), child))
            else:
                for child_rect in child_rects:
                    push(backend.classify(child_rect, quad.intersecting,
                                          quad.depth + 1))

        if self.top_t == 1:
            final = max_min
        else:
            final = max((q.min_hat for q in accepted), default=0.0)
        # Natural completion: the heap drained, so nothing above MaxMin
        # remains unexplored — the upper bound collapses onto the score.
        self.last_upper_bound = final
        return accepted, final, stats

    # ------------------------------------------------------------------ #

    def _accept(self, quad: Quadrant, accepted: list[Quadrant],
                found_covers: _FoundCovers, frontier: list[float],
                stats: _MutableStats) -> None:
        stats.results += 1
        accepted.append(quad)
        new_cover = found_covers.add(quad)
        if self.top_t > 1 and new_cover:
            # Only distinct regions advance the top-t frontier: two
            # quadrants of one region must not consume two frontier slots.
            score = quad.min_hat
            if len(frontier) < self.top_t:
                heapq.heappush(frontier, score)
            elif score > frontier[0]:
                heapq.heapreplace(frontier, score)

    def _top_t_threshold(self, frontier: list[float]) -> float:
        """Theorem 2 threshold in top-t mode: prune only below the t-th
        best consistent score found so far (0 until t regions exist)."""
        if len(frontier) < self.top_t:
            return 0.0
        return frontier[0]

    def _refinement_action(self, quad: Quadrant, nlcs: CircleSet,
                           max_min: float, tol: float, resolution: float,
                           found_covers: _FoundCovers,
                           stats: _MutableStats
                           ) -> tuple[str, Quadrant | None]:
        """Compatibility refinement (see :mod:`repro.core.refine`).

        Returns ``("prune", None)`` when the quadrant is finished — its
        refined upper bound is below the Theorem 2 threshold, or every
        compatible subset that could still tie the optimum extends a
        found cover (its region is already discovered: the mechanism that
        terminates the tessellation of cusps between tangent NLCs).
        Returns ``("requeue", quadrant)`` when the refined bound tightened
        ``m̂ax`` to the MaxMin plateau but the blocking regions are not
        found yet: the re-queued copy sits behind same-priority genuine
        work (FIFO tie-break), so the blocking regions get discovered
        first and the next pop prunes.  ``("split", None)`` otherwise.
        """
        stats.refinement_checks += 1
        refinement = refine_quadrant(
            nlcs, quad.boundary_only, quad.rect,
            base_score=quad.min_hat, value_floor=max_min - tol,
            tol=resolution, vectorized=self.hotpath == "batched")
        if refinement is None:
            return ("split", None)
        if refinement.refined_max < max_min - tol:
            stats.pruned_refined += 1
            return ("prune", None)
        if (refinement.complete
                and refinement.refined_max <= max_min + tol
                and refinement.top_cliques):
            containing = quad.containing
            covered = all(
                found_covers.any_superset(containing, clique)
                for clique in refinement.top_cliques)
            if covered:
                stats.pruned_refined += 1
                return ("prune", None)
            if (not quad.refined
                    and refinement.refined_max < quad.max_hat - tol):
                # One re-queue per quadrant: if the blocking regions are
                # still unfound on the second pop (e.g. a pairwise-
                # compatible clique with empty common intersection —
                # Helly failure — whose region never materialises), fall
                # through to a regular split, which shrinks the rectangle
                # and tightens the next refinement.
                requeue = Quadrant(
                    rect=quad.rect, intersecting=quad.intersecting,
                    containing_mask=quad.containing_mask,
                    max_hat=refinement.refined_max,
                    min_hat=quad.min_hat, depth=quad.depth, refined=True)
                return ("requeue", requeue)
            return ("split", None)
        if refinement.refined_max < quad.max_hat - tol:
            # Above the plateau but tighter than m̂ax: re-queue once with
            # the better priority so ordering reflects reality.
            if not quad.refined:
                requeue = Quadrant(
                    rect=quad.rect, intersecting=quad.intersecting,
                    containing_mask=quad.containing_mask,
                    max_hat=refinement.refined_max,
                    min_hat=quad.min_hat, depth=quad.depth, refined=True)
                return ("requeue", requeue)
        return ("split", None)

    def _theorem3_prunes(self, quad: Quadrant,
                         found_covers: _FoundCovers) -> bool:
        return found_covers.prunes(quad, self.theorem3)

    def _common_point_inside(self, quad: Quadrant, nlcs: CircleSet,
                             resolution: float) -> tuple[float, float] | None:
        """The intersection-point detector (Algorithm 1 line 26).

        Returns a point strictly inside the quadrant where every NLC in
        ``Q.I - Q.C`` meets, or ``None``.

        The coincidence tolerance is the larger of the solver's geometric
        ``resolution`` (global-space-derived — a tile shard must detect
        the same coincidences as the full-space run, so the tolerance
        cannot come from the local root rect) and a fraction of the
        quadrant size.  The size-scaled term matters in the degenerate
        regime: a float-smeared coincidence cluster spread over ~1e2 ulps
        fails an absolute 1e-9-of-extent membership test, yet any circle
        crossing a quadrant of width ``w`` passes within ``w`` of every
        interior point — so at the depths where degeneracy triggers fire,
        accepting agreement within ``w/16`` still pins the split to the
        cluster while letting the detector see through the float smear.
        Splitting at an approximate coincidence point is always sound
        (``split_at`` on any interior point preserves exactness); the
        tolerance only decides whether the cheap point split fires or the
        quadrant tessellates to the resolution floor.
        """
        boundary = quad.boundary_only
        if len(boundary) < 2:
            return None
        rect = quad.rect
        tol = max(resolution, min(rect.width, rect.height) / 16.0)
        if self.hotpath == "batched":
            p = self._disks_common_point_arrays(nlcs, boundary, tol)
        else:
            p = disks_common_point(nlcs.circles(boundary), tol=tol)
        if p is None:
            return None
        if not (rect.xmin < p.x < rect.xmax and rect.ymin < p.y < rect.ymax):
            return None
        return (p.x, p.y)

    @staticmethod
    def _disks_common_point_arrays(nlcs: CircleSet, boundary: np.ndarray,
                                   tol: float) -> Point | None:
        """Array-backed :func:`disks_common_point` over NLC indices.

        Same construction — candidate points from the first two
        circumferences, then an every-circle membership test — but the
        membership test is one vectorised pass instead of a Circle-object
        loop (boundary sets near the root hold thousands of disks).
        """
        candidates = circle_circle_intersection(
            nlcs.circle(int(boundary[0])), nlcs.circle(int(boundary[1])),
            tol)
        if not candidates:
            return None
        rest = boundary[2:]
        cx = nlcs.cx[rest]
        cy = nlcs.cy[rest]
        r = nlcs.r[rest]
        for p in candidates:
            d = np.hypot(cx - p.x, cy - p.y)
            if bool((np.abs(d - r) <= tol).all()):
                return p
        return None


def _echo_free_children(rect: Rect, children: tuple[Rect, ...]) -> list[Rect]:
    """Child rectangles of a split of ``rect``, with echoes resolved.

    ``Rect.split_at`` on a boundary point can return the rectangle
    itself as a child (e.g. splitting at the top-right corner yields
    four distinct children whose lower-left IS the rectangle); pushing
    such an echo would loop the search forever, so echoes recurse
    through the centre split instead.  The scan is skipped only for a
    strictly interior split, certified by BOTH the lower-left and the
    upper-right child being full-dimensional — the lower-left alone is
    not enough (a top-right-corner split leaves it full-dimensional and
    equal to ``rect``).
    """
    first = children[0]
    last = children[-1]
    if (len(children) == 4
            and first.xmax > first.xmin and first.ymax > first.ymin
            and last.xmax > last.xmin and last.ymax > last.ymin):
        return list(children)
    child_rects: list[Rect] = []
    for child_rect in children:
        if child_rect == rect:
            child_rects.extend(rect.split_center())
        else:
            child_rects.append(child_rect)
    return child_rects


def _keep_top_t(regions: list, top_t: int, tol: float) -> list:
    """Regions whose score ties one of the ``top_t`` best distinct scores."""
    distinct: list[float] = []
    for region in regions:  # already sorted descending
        if not distinct or distinct[-1] - region.score > tol:
            distinct.append(region.score)
        if len(distinct) > top_t:
            break
    cutoff = distinct[min(top_t, len(distinct)) - 1] - tol
    return [r for r in regions if r.score >= cutoff]
