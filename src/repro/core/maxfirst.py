"""MaxFirst — Algorithm 1 (Phase I) and the full two-phase solver.

Phase I recursively partitions the data space into quadrants, always
expanding the quadrant with the largest upper bound ``m̂ax``.  A quadrant is

* **split** while its ``m̂ax`` exceeds the best proven lower bound
  ``MaxMin`` (or equals it but the quadrant is not yet consistent and no
  found region explains it),
* **pruned** by Theorem 2 when ``m̂ax < MaxMin``,
* **pruned** by Theorem 3 when its intersecting NLCs are a subset of a
  found region's covering NLCs (its optimal region was already discovered),
* **accepted** when it is *consistent* (``m̂ax == m̂in``) at the maximum.

Phase II (:mod:`repro.core.region`) grows each accepted quadrant into the
actual optimal region.

Region semantics and the intersection-point problem
---------------------------------------------------
The problem asks for *maximal consistent regions* (full-dimensional), so
the optimum is the essential supremum of ``total_score`` — a point where
many circumferences merely meet does not count (see
:mod:`repro.core.scoring`).  ``Q.I`` therefore uses open-disk
intersection: a disk grazing a quadrant at a boundary point is excluded.
This is what lets quadrants next to a circle-coincidence point become
consistent, exactly as the paper's termination proof requires.

When every NLC in ``Q.I - Q.C`` passes through one common point ``p``
inside ``Q`` (Algorithm 1's intersection-point problem — pervasive in
practice, because every customer's ``k``-th NLC passes through its
``k``-th nearest site), the regular centre split makes slow progress.
Following the pseudocode we detect the situation after ``m`` consecutive
splits that leave ``Q.I`` and ``m̂in`` unchanged and split at ``p``; the
through-circles then graze the children only at their corner ``p`` and
drop out of their ``Q.I`` sets.  A resolution guard force-closes quadrants
below float resolution (near-coincidences tighter than the predicate
noise floor); it reports the quadrant's proven lower bound and counts the
event in ``stats.resolution_closed``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time

import numpy as np

from repro.core.bounds import make_backend
from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.quadrant import Quadrant, _MutableStats
from repro.core.refine import refine_quadrant
from repro.core.region import compute_optimal_region
from repro.core.result import MaxBRkNNResult
from repro.geometry.intersection import disks_common_point
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet

# Theorem 3 is load-bearing: without it, quadrants straddling a found
# region's boundary re-split forever (the boundary is a curve — its
# tessellation grows exponentially with depth), so there is no "off" mode.
_THEOREM3_MODES = ("subset", "equality")


class MaxFirst:
    """The MaxFirst solver for the generalized MaxBRkNN problem.

    Parameters
    ----------
    m_threshold:
        The paper's ``m``: consecutive same-frontier splits tolerated
        before checking for the intersection-point problem.  Any positive
        value is correct; Figure 8 shows performance is insensitive to it
        (paper default: 4).
    backend:
        ``"vector"`` (hierarchical numpy classification, default) or
        ``"rtree"`` (paper-literal R-tree range queries).
    theorem3:
        ``"subset"`` (default; the full strength of Theorem 3) or
        ``"equality"`` (the literal pseudocode test ``Q'.C == Q.I``).
        Theorem 3 cannot be disabled: it is what terminates the
        tessellation along a found region's boundary.
    top_t:
        Return the ``t`` best *score tiers* of distinct consistent regions
        instead of only the maximum (an extension; ``top_t=1`` is the
        paper's algorithm).  Every location in a returned region attains
        at least that region's score; tiers below the maximum may be
        plateaus adjacent to a better region.  With ``top_t > 1`` the
        Theorem 2 threshold is the ``t``-th best consistent score found so
        far (conservative but exact), and found-region pruning runs on
        every pop.
    tie_tol:
        Relative tolerance for score-equality tests (floating point stands
        in for the paper's exact reals).
    resolution_fraction:
        The solver's geometric resolution as a fraction of the space
        extent: quadrants whose smaller dimension reaches it are closed
        with their proven lower bound (counted in
        ``stats.resolution_closed``), and disk/quadrant overlaps thinner
        than it are treated as non-overlaps (the graze tolerance).
        Features below the resolution — 1e-9 of the data extent by
        default — are beyond any physical siting decision.
    degeneracy_depth:
        Quadrants at or beyond this depth always run the degeneracy
        machinery (common-point detection and compatibility refinement)
        on every split.  The paper's same-frontier counter alone starves
        when many degenerate spots interleave in the heap; depth is a
        robust secondary trigger — healthy searches rarely exceed depth
        ~16, degeneracy chases exceed 25.
    nlc_method / keep_zero_score_nlcs:
        Passed through to :func:`repro.core.nlc.build_nlcs`.
    max_iterations:
        Safety valve on heap pops; ``None`` derives a generous bound from
        the instance size.
    """

    def __init__(self, m_threshold: int = 4, backend: str = "vector",
                 theorem3: str = "subset", top_t: int = 1,
                 tie_tol: float = 1e-9,
                 resolution_fraction: float = 1e-9,
                 degeneracy_depth: int = 20,
                 nlc_method: str = "auto",
                 keep_zero_score_nlcs: bool = False,
                 max_iterations: int | None = None) -> None:
        if m_threshold < 1:
            raise ValueError("m_threshold must be positive")
        if degeneracy_depth < 1:
            raise ValueError("degeneracy_depth must be positive")
        if theorem3 not in _THEOREM3_MODES:
            raise ValueError(
                f"theorem3 must be one of {_THEOREM3_MODES}, got {theorem3!r}")
        if top_t < 1:
            raise ValueError("top_t must be positive")
        if tie_tol < 0 or resolution_fraction < 0:
            raise ValueError("tolerances must be non-negative")
        self.m_threshold = m_threshold
        self.backend_name = backend
        self.theorem3 = theorem3
        self.top_t = top_t
        self.tie_tol = tie_tol
        self.resolution_fraction = resolution_fraction
        self.degeneracy_depth = degeneracy_depth
        self.nlc_method = nlc_method
        self.keep_zero_score_nlcs = keep_zero_score_nlcs
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------ #

    def solve(self, problem: MaxBRkNNProblem) -> MaxBRkNNResult:
        """Run the full pipeline: NLC construction, Phase I, Phase II."""
        t0 = time.perf_counter()
        nlcs = build_nlcs(problem, method=self.nlc_method,
                          keep_zero_score=self.keep_zero_score_nlcs)
        t1 = time.perf_counter()
        if len(nlcs) == 0:
            # Legal degenerate instance (e.g. all weights zero): nothing
            # can score anywhere.
            return MaxBRkNNResult(
                score=0.0, regions=(), nlcs=nlcs,
                space=problem.data_bounds(),
                stats=_MutableStats().freeze(),
                timings={"nlc": t1 - t0, "phase1": 0.0, "phase2": 0.0})
        result = self.solve_nlcs(nlcs)
        result.timings["nlc"] = t1 - t0
        return result

    def solve_nlcs(self, nlcs: CircleSet,
                   space: Rect | None = None) -> MaxBRkNNResult:
        """Solve over an explicit NLC set (skips pre-processing).

        ``space`` defaults to the bounding box of the NLCs — no location
        outside it can score above zero.
        """
        if len(nlcs) == 0:
            raise ValueError("cannot solve over an empty NLC set")
        if space is None:
            space = nlc_space(nlcs)

        t0 = time.perf_counter()
        accepted, max_min, stats = self._phase1(nlcs, space)
        t1 = time.perf_counter()

        tol = self.tie_tol * max(1.0, abs(max_min))
        regions = []
        seen_covers: set[tuple[int, ...]] = set()
        for quad in accepted:
            if quad.min_hat < max_min - tol and self.top_t == 1:
                continue  # superseded (defensive; see module docstring)
            key = quad.cover_key()
            if key in seen_covers:
                continue
            seen_covers.add(key)
            regions.append(compute_optimal_region(
                quad.rect, quad.containing, nlcs, score=quad.min_hat))
        regions.sort(key=lambda r: -r.score)
        if self.top_t > 1:
            regions = _keep_top_t(regions, self.top_t, tol)
        t2 = time.perf_counter()

        return MaxBRkNNResult(
            score=max_min, regions=tuple(regions), nlcs=nlcs, space=space,
            stats=stats.freeze(),
            timings={"phase1": t1 - t0, "phase2": t2 - t1})

    # ------------------------------------------------------------------ #
    # Phase I
    # ------------------------------------------------------------------ #

    def _phase1(self, nlcs: CircleSet,
                space: Rect) -> tuple[list[Quadrant], float, _MutableStats]:
        stats = _MutableStats()
        resolution = max(space.width, space.height) * self.resolution_fraction
        # The geometric resolution doubles as the graze tolerance of the
        # quadrant predicates (see CircleSet.classify_rect): overlaps
        # thinner than the resolution are treated as non-overlaps.
        backend = make_backend(self.backend_name, nlcs,
                               graze_tol=resolution)
        limit = self.max_iterations
        if limit is None:
            limit = 400 * len(nlcs) + 200_000

        counter = itertools.count()  # heap tie-breaker
        heap: list[tuple[float, int, Quadrant]] = []
        max_min = 0.0
        # For top_t > 1 the Theorem 2 threshold is the t-th best consistent
        # score (tracked as a min-heap of the best t); for top_t == 1 it is
        # the paper's MaxMin (raised by any quadrant's m̂in).
        frontier: list[float] = []
        accepted: list[Quadrant] = []
        found_covers: list[frozenset[int]] = []

        def push(quad: Quadrant) -> None:
            nonlocal max_min
            stats.generated += 1
            stats.max_depth = max(stats.max_depth, quad.depth)
            if self.top_t == 1:
                if quad.min_hat > max_min:
                    max_min = quad.min_hat
            heapq.heappush(heap, (-quad.max_hat, next(counter), quad))

        root = backend.classify(space, backend.root_candidates(), depth=0)
        push(root)

        prev_split: Quadrant | None = None
        same_frontier_count = 0
        pops = 0

        # Set REPRO_MAXFIRST_DEBUG=<N> to log search progress every N pops
        # (diagnosing slow convergence on adversarial instances).
        debug = int(os.environ.get("REPRO_MAXFIRST_DEBUG", "0"))
        while heap:
            pops += 1
            if debug and pops % debug == 0:
                top = heap[0][2]
                print(f"[maxfirst] pops={pops} heap={len(heap)} "
                      f"maxmin={max_min:.4f} top(max={top.max_hat:.4f} "
                      f"min={top.min_hat:.4f} depth={top.depth} "
                      f"width={top.rect.width:.2e} "
                      f"nI={len(top.intersecting)}) "
                      f"accepted={len(accepted)}")
            if pops > limit:
                raise RuntimeError(
                    f"MaxFirst did not converge within {limit} iterations "
                    f"(heap size {len(heap)}, MaxMin {max_min}); this "
                    "indicates a degenerate instance below the resolution "
                    "guard — raise resolution_fraction or max_iterations")
            _, _, quad = heapq.heappop(heap)
            tol = self.tie_tol * max(1.0, abs(max_min))

            if quad.max_hat < max_min - tol:
                stats.pruned_theorem2 += 1  # Theorem 2
                continue

            if quad.max_hat <= max_min + tol:
                # m̂ax == MaxMin: Theorem-3 prune, result, or keep
                # splitting.  The Theorem 3 test runs before the
                # consistency test (the pseudocode orders them the other
                # way): a consistent quadrant of an already-found region
                # has Q.I equal to that region's cover, so testing
                # Q.I ⊆ cover first prunes the thousands of duplicate
                # acceptances that interior quadrants of a large optimal
                # region would otherwise produce, and a *new* tied region
                # can never be subset-pruned (equal positive score sums
                # force equal covers).
                if self._theorem3_prunes(quad, found_covers):
                    stats.pruned_theorem3 += 1
                    continue
                if quad.min_hat >= quad.max_hat - tol:
                    self._accept(quad, accepted, found_covers, frontier,
                                 stats)
                    if self.top_t > 1:
                        max_min = self._top_t_threshold(frontier)
                    continue
            elif self.top_t > 1:
                # In top-t mode the Theorem 2 threshold stays low until t
                # distinct regions exist, so — unlike the t=1 pseudocode —
                # found-region pruning and acceptance must fire on every
                # pop or the area around each found region is tessellated
                # to machine precision.
                if self._theorem3_prunes(quad, found_covers):
                    stats.pruned_theorem3 += 1
                    continue
                if quad.min_hat >= quad.max_hat - tol:
                    self._accept(quad, accepted, found_covers, frontier,
                                 stats)
                    max_min = self._top_t_threshold(frontier)
                    continue

            # --- split ------------------------------------------------ #
            # Close at the resolution floor.  The test is on the SMALLER
            # dimension: point splits can produce sliver quadrants whose
            # aspect ratio center-splitting preserves, and a sliver
            # thinner than the resolution cannot host a feature above the
            # resolution — whatever optimal region crosses it extends
            # into (and is found via) its full-size neighbours.
            if min(quad.rect.width, quad.rect.height) <= resolution:
                stats.resolution_closed += 1
                # Accepted with its proven lower bound as the score; the
                # resolution_closed counter flags the imprecision.
                self._accept(quad, accepted, found_covers, frontier,
                             stats)
                if self.top_t > 1:
                    max_min = self._top_t_threshold(frontier)
                continue

            if prev_split is not None and quad.same_frontier(prev_split):
                same_frontier_count += 1
            else:
                same_frontier_count = 0

            # Degeneracy handling fires on the paper's trigger (m
            # consecutive same-frontier splits), on depth (interleaved
            # pops starve the global counter when many degenerate spots
            # coexist), and immediately for re-queued refined quadrants.
            split_point = None
            triggered = (quad.refined
                         or same_frontier_count >= self.m_threshold
                         or quad.depth >= self.degeneracy_depth)
            if triggered:
                stats.intersection_checks += 1
                split_point = self._common_point_inside(quad, nlcs, space)
                if same_frontier_count >= self.m_threshold:
                    same_frontier_count = 0
                if split_point is None:
                    action, requeue = self._refinement_action(
                        quad, nlcs, max_min, tol, resolution,
                        found_covers, stats)
                    if action == "prune":
                        prev_split = quad
                        continue
                    if action == "requeue":
                        prev_split = quad
                        heapq.heappush(
                            heap,
                            (-requeue.max_hat, next(counter), requeue))
                        continue

            prev_split = quad
            stats.splits += 1
            if split_point is not None:
                px, py = split_point
                stats.point_splits += 1
                children = quad.rect.split_at(px, py)
            else:
                children = quad.rect.split_center()
            for child_rect in children:
                if child_rect == quad.rect:
                    # split_at on a boundary point can echo the quadrant
                    # itself; recurse through the centre instead.
                    for sub in quad.rect.split_center():
                        push(backend.classify(sub, quad.intersecting,
                                              quad.depth + 1))
                    continue
                push(backend.classify(child_rect, quad.intersecting,
                                      quad.depth + 1))

        if self.top_t == 1:
            final = max_min
        else:
            final = max((q.min_hat for q in accepted), default=0.0)
        return accepted, final, stats

    # ------------------------------------------------------------------ #

    def _accept(self, quad: Quadrant, accepted: list[Quadrant],
                found_covers: list[frozenset[int]], frontier: list[float],
                stats: _MutableStats) -> None:
        stats.results += 1
        accepted.append(quad)
        cover = frozenset(int(i) for i in quad.containing)
        duplicate_cover = cover in found_covers
        if not duplicate_cover:
            found_covers.append(cover)
        if self.top_t > 1 and not duplicate_cover:
            # Only distinct regions advance the top-t frontier: two
            # quadrants of one region must not consume two frontier slots.
            score = quad.min_hat
            if len(frontier) < self.top_t:
                heapq.heappush(frontier, score)
            elif score > frontier[0]:
                heapq.heapreplace(frontier, score)

    def _top_t_threshold(self, frontier: list[float]) -> float:
        """Theorem 2 threshold in top-t mode: prune only below the t-th
        best consistent score found so far (0 until t regions exist)."""
        if len(frontier) < self.top_t:
            return 0.0
        return frontier[0]

    def _refinement_action(self, quad: Quadrant, nlcs: CircleSet,
                           max_min: float, tol: float, resolution: float,
                           found_covers: list[frozenset[int]],
                           stats: _MutableStats
                           ) -> tuple[str, Quadrant | None]:
        """Compatibility refinement (see :mod:`repro.core.refine`).

        Returns ``("prune", None)`` when the quadrant is finished — its
        refined upper bound is below the Theorem 2 threshold, or every
        compatible subset that could still tie the optimum extends a
        found cover (its region is already discovered: the mechanism that
        terminates the tessellation of cusps between tangent NLCs).
        Returns ``("requeue", quadrant)`` when the refined bound tightened
        ``m̂ax`` to the MaxMin plateau but the blocking regions are not
        found yet: the re-queued copy sits behind same-priority genuine
        work (FIFO tie-break), so the blocking regions get discovered
        first and the next pop prunes.  ``("split", None)`` otherwise.
        """
        stats.refinement_checks += 1
        refinement = refine_quadrant(
            nlcs, quad.boundary_only, quad.rect,
            base_score=quad.min_hat, value_floor=max_min - tol,
            tol=resolution)
        if refinement is None:
            return ("split", None)
        if refinement.refined_max < max_min - tol:
            stats.pruned_refined += 1
            return ("prune", None)
        if (refinement.complete
                and refinement.refined_max <= max_min + tol
                and refinement.top_cliques):
            containing = frozenset(int(i) for i in quad.containing)
            covered = all(
                any((containing | frozenset(clique)) <= cover
                    for cover in found_covers)
                for clique in refinement.top_cliques)
            if covered:
                stats.pruned_refined += 1
                return ("prune", None)
            if (not quad.refined
                    and refinement.refined_max < quad.max_hat - tol):
                # One re-queue per quadrant: if the blocking regions are
                # still unfound on the second pop (e.g. a pairwise-
                # compatible clique with empty common intersection —
                # Helly failure — whose region never materialises), fall
                # through to a regular split, which shrinks the rectangle
                # and tightens the next refinement.
                requeue = Quadrant(
                    rect=quad.rect, intersecting=quad.intersecting,
                    containing_mask=quad.containing_mask,
                    max_hat=refinement.refined_max,
                    min_hat=quad.min_hat, depth=quad.depth, refined=True)
                return ("requeue", requeue)
            return ("split", None)
        if refinement.refined_max < quad.max_hat - tol:
            # Above the plateau but tighter than m̂ax: re-queue once with
            # the better priority so ordering reflects reality.
            if not quad.refined:
                requeue = Quadrant(
                    rect=quad.rect, intersecting=quad.intersecting,
                    containing_mask=quad.containing_mask,
                    max_hat=refinement.refined_max,
                    min_hat=quad.min_hat, depth=quad.depth, refined=True)
                return ("requeue", requeue)
        return ("split", None)

    def _theorem3_prunes(self, quad: Quadrant,
                         found_covers: list[frozenset[int]]) -> bool:
        if not found_covers:
            return False
        inter = frozenset(int(i) for i in quad.intersecting)
        if self.theorem3 == "equality":
            return any(inter == cover for cover in found_covers)
        return any(inter <= cover for cover in found_covers)

    def _common_point_inside(self, quad: Quadrant, nlcs: CircleSet,
                             space: Rect) -> tuple[float, float] | None:
        """The intersection-point detector (Algorithm 1 line 26).

        Returns a point strictly inside the quadrant where every NLC in
        ``Q.I - Q.C`` meets, or ``None``.
        """
        boundary = quad.boundary_only
        if len(boundary) < 2:
            return None
        circles = nlcs.circles(boundary)
        tol = max(space.width, space.height) * 1e-9
        p = disks_common_point(circles, tol=tol)
        if p is None:
            return None
        rect = quad.rect
        if not (rect.xmin < p.x < rect.xmax and rect.ymin < p.y < rect.ymax):
            return None
        return (p.x, p.y)


def _keep_top_t(regions: list, top_t: int, tol: float) -> list:
    """Regions whose score ties one of the ``top_t`` best distinct scores."""
    distinct: list[float] = []
    for region in regions:  # already sorted descending
        if not distinct or distinct[-1] - region.score > tol:
            distinct.append(region.score)
        if len(distinct) > top_t:
            break
    cutoff = distinct[min(top_t, len(distinct)) - 1] - tol
    return [r for r in regions if r.score >= cutoff]
