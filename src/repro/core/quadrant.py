"""Quadrants: the units of MaxFirst's space partitioning.

A quadrant pairs a rectangle with its Theorem 1 data: the NLCs that
intersect it (``Q.I``), the subset that contain it (``Q.C``), and the score
bounds ``m̂ax = sum(score, Q.I)`` and ``m̂in = sum(score, Q.C)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.geometry.rect import Rect


@dataclass(slots=True)
class Quadrant:
    """A quadrant and its score bounds.

    ``intersecting`` is a sorted index array into the solver's
    :class:`~repro.index.circleset.CircleSet`; ``containing_mask`` flags,
    per entry of ``intersecting``, membership in ``Q.C``.
    """

    rect: Rect
    intersecting: np.ndarray
    containing_mask: np.ndarray
    max_hat: float
    min_hat: float
    depth: int = 0
    # True once the compatibility refinement has tightened max_hat; such
    # quadrants re-enter degeneracy handling directly on their next pop.
    refined: bool = False
    # Lazily-computed cover identity (see cover_key); cached so the
    # Theorem 3 bookkeeping and region dedup never rebuild it per pop.
    _cover_key: tuple[int, ...] | None = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.min_hat > self.max_hat + 1e-9:
            raise ValueError(
                f"Theorem 1 violated: min_hat={self.min_hat} > "
                f"max_hat={self.max_hat}")

    @property
    def containing(self) -> np.ndarray:
        """Indices of the NLCs in ``Q.C``."""
        return self.intersecting[self.containing_mask]

    @property
    def boundary_only(self) -> np.ndarray:
        """Indices of the NLCs in ``Q.I - Q.C`` — the disks whose boundary
        crosses the quadrant.  These drive the intersection-point problem
        check."""
        return self.intersecting[~self.containing_mask]

    @property
    def is_consistent(self) -> bool:
        """True when every location in the quadrant provably has the same
        score (``m̂ax == m̂in``, i.e. ``Q.I == Q.C``)."""
        return bool(self.containing_mask.all()) if len(
            self.containing_mask) else True

    def same_frontier(self, other: "Quadrant", tol: float = 0.0) -> bool:
        """True when both quadrants intersect the same NLCs with the same
        ``m̂in`` — the repeated-split signature that triggers the
        intersection-point check (Algorithm 1, lines 19-20)."""
        if abs(self.min_hat - other.min_hat) > tol:
            return False
        return np.array_equal(self.intersecting, other.intersecting)

    def cover_key(self) -> tuple[int, ...]:
        """Hashable identity of ``Q.C``: the sorted cover indices (used to
        deduplicate optimal regions and for Theorem 3 bookkeeping).
        ``intersecting`` is sorted by construction, so the tuple is too.
        Computed once and cached — repeat calls are free."""
        key = self._cover_key
        if key is None:
            key = tuple(int(i) for i in self.containing)
            self._cover_key = key
        return key


@dataclass(frozen=True)
class MaxFirstStats:
    """Counters behind Figure 13 of the paper.

    * ``generated`` — quadrants created ("total" in Fig. 13);
    * ``splits`` — quadrants partitioned further;
    * ``pruned_theorem2`` — pruned because ``m̂ax < MaxMin`` ("pruned1");
    * ``pruned_theorem3`` — pruned because a found region already covers
      them ("pruned2");
    * ``results`` — consistent maximum-score quadrants returned by Phase I;
    * ``point_splits`` — splits performed at a common intersection point;
    * ``intersection_checks`` — times the common-point detector ran;
    * ``refinement_checks`` — compatibility-refinement passes run;
    * ``pruned_refined`` — quadrants pruned by the refined bound or the
      generalized found-cover test (tangency cusps);
    * ``resolution_closed`` — quadrants closed by the floating-point
      resolution guard (0 in healthy runs);
    * ``max_depth`` — deepest quadrant examined.
    """

    generated: int = 0
    splits: int = 0
    pruned_theorem2: int = 0
    pruned_theorem3: int = 0
    results: int = 0
    point_splits: int = 0
    intersection_checks: int = 0
    refinement_checks: int = 0
    pruned_refined: int = 0
    resolution_closed: int = 0
    max_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "generated": self.generated,
            "splits": self.splits,
            "pruned_theorem2": self.pruned_theorem2,
            "pruned_theorem3": self.pruned_theorem3,
            "results": self.results,
            "point_splits": self.point_splits,
            "intersection_checks": self.intersection_checks,
            "refinement_checks": self.refinement_checks,
            "pruned_refined": self.pruned_refined,
            "resolution_closed": self.resolution_closed,
            "max_depth": self.max_depth,
        }


#: The stable MaxFirst counter-key set, in :meth:`MaxFirstStats.as_dict`
#: order.  The engine pipelines zero-fill these keys so every RunReport
#: (including degenerate no-NLC solves) carries the full schema; the
#: counter-schema test and the perf gate rely on it.
MAXFIRST_COUNTER_KEYS: tuple[str, ...] = tuple(
    f.name for f in fields(MaxFirstStats))


@dataclass
class _MutableStats:
    """Accumulator the solver mutates; frozen into MaxFirstStats at the
    end so results are immutable."""

    generated: int = 0
    splits: int = 0
    pruned_theorem2: int = 0
    pruned_theorem3: int = 0
    results: int = 0
    point_splits: int = 0
    intersection_checks: int = 0
    refinement_checks: int = 0
    pruned_refined: int = 0
    resolution_closed: int = 0
    max_depth: int = 0

    def freeze(self) -> MaxFirstStats:
        return MaxFirstStats(
            generated=self.generated,
            splits=self.splits,
            pruned_theorem2=self.pruned_theorem2,
            pruned_theorem3=self.pruned_theorem3,
            results=self.results,
            point_splits=self.point_splits,
            intersection_checks=self.intersection_checks,
            refinement_checks=self.refinement_checks,
            pruned_refined=self.pruned_refined,
            resolution_closed=self.resolution_closed,
            max_depth=self.max_depth,
        )
