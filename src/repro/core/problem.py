"""Problem specification for (generalized) MaxBRkNN.

A :class:`MaxBRkNNProblem` bundles the customer objects ``O`` (with
weights), the service sites ``P``, the neighbourhood size ``k`` and the
probability model(s).  It validates everything once so the solvers can
assume clean input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.probability import (
    ProbabilityLike,
    ProbabilityModel,
    resolve_models,
)
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class MaxBRkNNProblem:
    """An instance of the generalized MaxBRkNN problem.

    Parameters
    ----------
    customers:
        ``(n, 2)`` array-like of customer object locations (the set ``O``).
    sites:
        ``(m, 2)`` array-like of existing service site locations (``P``).
    k:
        Customers consider their ``k`` nearest service sites.  Requires
        ``k <= m`` (the ``k``-th nearest site must exist).
    weights:
        Optional per-customer importance ``w(o) >= 0``; defaults to 1.
    probability:
        ``None`` (uniform), a :class:`ProbabilityModel`, a probability
        sequence, or a list of one model per customer.

    >>> p = MaxBRkNNProblem([(0, 0), (2, 0)], [(1, 0), (5, 5), (-3, 0)], k=2)
    >>> p.n_customers, p.n_sites
    (2, 3)
    """

    customers: np.ndarray
    sites: np.ndarray
    k: int = 1
    weights: np.ndarray | None = None
    probability: ProbabilityLike = None
    models: list[ProbabilityModel] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        customers = _as_points_array(self.customers, "customers")
        sites = _as_points_array(self.sites, "sites")
        object.__setattr__(self, "customers", customers)
        object.__setattr__(self, "sites", sites)

        if customers.shape[0] == 0:
            raise ValueError("at least one customer object is required")
        if sites.shape[0] == 0:
            raise ValueError("at least one service site is required")
        if not isinstance(self.k, (int, np.integer)) or self.k < 1:
            raise ValueError(f"k must be a positive integer, got {self.k!r}")
        if self.k > sites.shape[0]:
            raise ValueError(
                f"k={self.k} exceeds the number of service sites "
                f"({sites.shape[0]}): the k-th nearest site must exist")

        if self.weights is None:
            weights = np.ones(customers.shape[0], dtype=np.float64)
        else:
            weights = np.asarray(self.weights, dtype=np.float64).ravel()
            if weights.shape[0] != customers.shape[0]:
                raise ValueError(
                    f"weights has {weights.shape[0]} entries for "
                    f"{customers.shape[0]} customers")
            if not np.isfinite(weights).all() or (weights < 0).any():
                raise ValueError("weights must be finite and non-negative")
        object.__setattr__(self, "weights", weights)

        models = resolve_models(self.probability, int(self.k),
                                customers.shape[0])
        object.__setattr__(self, "models", models)

    @property
    def n_customers(self) -> int:
        return int(self.customers.shape[0])

    @property
    def n_sites(self) -> int:
        return int(self.sites.shape[0])

    @property
    def has_uniform_probability(self) -> bool:
        """True when every customer uses the uniform (classic) model —
        the precondition for comparing against MaxOverlap."""
        first = self.models[0]
        return (first.is_uniform()
                and all(m is first or m.is_uniform() for m in self.models))

    def data_bounds(self) -> Rect:
        """Bounding box of all customers and sites."""
        xs = np.concatenate([self.customers[:, 0], self.sites[:, 0]])
        ys = np.concatenate([self.customers[:, 1], self.sites[:, 1]])
        return Rect(float(xs.min()), float(ys.min()),
                    float(xs.max()), float(ys.max()))


def _as_points_array(data: Any, name: str) -> np.ndarray:
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(
            f"{name} must be an (n, 2) array of planar points, "
            f"got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains non-finite coordinates")
    return np.ascontiguousarray(arr)
