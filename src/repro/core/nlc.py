"""Nearest location circle (NLC) construction.

This is the pre-processing step of both MaxFirst and MaxOverlap: for every
customer object ``o``, find its ``k`` nearest service sites and materialise
the ``k`` concentric NLCs with their Definition 2 scores.  The paper
budgets ``O(|O| log |P|)`` for this step using an R-tree over the sites; we
offer three engines and pick automatically:

* ``"brute"`` — chunked numpy distance matrices with ``argpartition``;
  fastest when ``|P|`` is small-to-moderate (the paper's regime,
  ``|P| <= 1000``).
* ``"kdtree"`` — our :class:`~repro.index.kdtree.KDTree`; wins when
  ``|P|`` is large.
* ``"rtree"`` — best-first kNN on our :class:`~repro.index.rtree.RTree`,
  the literal structure from the paper (kept for fidelity and tests).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import MaxBRkNNProblem
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree

_BRUTE_CHUNK = 2048
# Above this many sites the kd-tree's O(log |P|) per query beats the numpy
# O(|P|) row scan (empirically calibrated; exact crossover is unimportant).
_BRUTE_SITE_LIMIT = 4096


def resolve_knn_method(n_points: int, method: str = "auto") -> str:
    """Resolve ``"auto"`` to the concrete engine for ``n_points`` sites."""
    if method == "auto":
        return "brute" if n_points <= _BRUTE_SITE_LIMIT else "kdtree"
    if method not in ("brute", "kdtree", "rtree"):
        raise ValueError(f"unknown kNN method: {method!r}")
    return method


def build_knn_tree(points: np.ndarray,
                   method: str = "auto") -> KDTree | RTree | None:
    """Prebuild the spatial index :func:`knn_distances` would build for
    ``method``, so callers issuing several query batches against the same
    site set (the pipeline's ``build_nlcs`` stage across repeated runs)
    pay construction once.  Returns ``None`` for the brute engine, which
    has no index to reuse.
    """
    points = np.asarray(points, dtype=np.float64)
    method = resolve_knn_method(points.shape[0], method)
    if method == "kdtree":
        return KDTree(points)
    if method == "rtree":
        return RTree.bulk_load(
            (Rect(float(x), float(y), float(x), float(y)), i)
            for i, (x, y) in enumerate(points))
    return None


def knn_distances(queries: np.ndarray, points: np.ndarray, k: int,
                  method: str = "auto",
                  tree: KDTree | RTree | None = None) -> np.ndarray:
    """Distances from each query to its ``k`` nearest ``points``.

    Returns an ``(n_queries, k)`` array of ascending distances.  The result
    is engine-independent (ties do not affect *distances*), which the test
    suite verifies by cross-checking all engines.  ``tree`` optionally
    reuses a :func:`build_knn_tree` product for the matching method
    instead of rebuilding it per call.
    """
    queries = np.asarray(queries, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if k < 1 or k > points.shape[0]:
        raise ValueError(
            f"k={k} out of range for {points.shape[0]} points")
    method = resolve_knn_method(points.shape[0], method)
    if method == "brute":
        return _knn_brute(queries, points, k)
    if method == "kdtree":
        return _knn_kdtree(queries, points, k, tree=tree)
    return _knn_rtree(queries, points, k, tree=tree)


def build_nlcs(problem: MaxBRkNNProblem, method: str = "auto",
               keep_zero_score: bool = False,
               tree: KDTree | RTree | None = None) -> CircleSet:
    """Materialise the scored NLCs of every customer object.

    By default NLCs whose Definition 2 score is zero are dropped: a
    zero-score disk cannot change ``total_score`` anywhere, so it affects
    neither the optimum nor the optimal region.  (Under the uniform model
    only the ``k``-th NLC of each object carries score — exactly the circles
    the MaxOverlap extension in Section I uses.)  Pass
    ``keep_zero_score=True`` to keep all ``k`` disks per object, matching
    the paper's presentation literally.  ``tree`` optionally reuses a
    prebuilt :func:`build_knn_tree` index over the sites.
    """
    dists = knn_distances(problem.customers, problem.sites, problem.k,
                          method=method, tree=tree)
    n = problem.n_customers
    k = problem.k

    score_rows = np.empty((n, k), dtype=np.float64)
    cache: dict[tuple, np.ndarray] = {}
    for i, model in enumerate(problem.models):
        base = cache.get(model.probs)
        if base is None:
            base = np.array(model.scores(1.0), dtype=np.float64)
            cache[model.probs] = base
        score_rows[i] = base
    score_rows *= problem.weights[:, None]

    owners = np.repeat(np.arange(n, dtype=np.int64), k)
    levels = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    cx = np.repeat(problem.customers[:, 0], k)
    cy = np.repeat(problem.customers[:, 1], k)
    radii = dists.reshape(-1)
    scores = score_rows.reshape(-1)

    if not keep_zero_score:
        keep = scores > 0.0
        cx, cy = cx[keep], cy[keep]
        radii, scores = radii[keep], scores[keep]
        owners, levels = owners[keep], levels[keep]

    return CircleSet(cx, cy, radii, scores, owners=owners, levels=levels)


def nlc_space(nlcs: CircleSet, margin_fraction: float = 1e-6) -> Rect:
    """The data space MaxFirst partitions: the bounding box of all NLCs.

    Locations outside every NLC have zero influence, so no optimal region
    (of positive score) can extend past this box.  A relative margin keeps
    circle/boundary tangencies strictly interior.
    """
    box = nlcs.bounding_box()
    margin = max(box.width, box.height, 1.0) * margin_fraction
    return box.expanded(margin)


# ---------------------------------------------------------------------- #
# Engines
# ---------------------------------------------------------------------- #

def knn_chunked(queries: np.ndarray, points: np.ndarray,
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """Chunked brute-force kNN: ``(distances, indices)``, both
    ``(n_queries, k)``.

    The single implementation behind :func:`knn_distances`'s brute
    engine and :func:`repro.core.queries.knn_sites`.  Chunking bounds
    the distance-matrix scratch at ``_BRUTE_CHUNK * |points|`` floats;
    within each row the ``k`` winners are ordered by the deterministic
    ``(distance, index)`` tie-break, so equidistant sites always report
    in index order regardless of ``argpartition``'s internal choices.
    """
    queries = np.asarray(queries, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    n = queries.shape[0]
    dists = np.empty((n, k), dtype=np.float64)
    indices = np.empty((n, k), dtype=np.int64)
    px = points[:, 0]
    py = points[:, 1]
    for start in range(0, n, _BRUTE_CHUNK):
        chunk = queries[start:start + _BRUTE_CHUNK]
        dx = chunk[:, 0:1] - px[None, :]
        dy = chunk[:, 1:2] - py[None, :]
        d2 = dx * dx + dy * dy
        if k < points.shape[0]:
            part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        else:
            part = np.tile(np.arange(points.shape[0], dtype=np.int64),
                           (chunk.shape[0], 1))
        rows = np.arange(part.shape[0])[:, None]
        cand = d2[rows, part]
        order = np.lexsort((part, cand), axis=1)
        dists[start:start + _BRUTE_CHUNK] = np.sqrt(cand[rows, order])
        indices[start:start + _BRUTE_CHUNK] = part[rows, order]
    return dists, indices


def _knn_brute(queries: np.ndarray, points: np.ndarray,
               k: int) -> np.ndarray:
    return knn_chunked(queries, points, k)[0]


def _knn_kdtree(queries: np.ndarray, points: np.ndarray, k: int,
                tree: KDTree | RTree | None = None) -> np.ndarray:
    if not isinstance(tree, KDTree):
        tree = KDTree(points)
    out = np.empty((queries.shape[0], k), dtype=np.float64)
    for i, (x, y) in enumerate(queries):
        for j, (d, _) in enumerate(tree.query(float(x), float(y), k=k)):
            out[i, j] = d
    return out


def _knn_rtree(queries: np.ndarray, points: np.ndarray, k: int,
               tree: KDTree | RTree | None = None) -> np.ndarray:
    if not isinstance(tree, RTree):
        tree = RTree.bulk_load(
            (Rect(float(x), float(y), float(x), float(y)), i)
            for i, (x, y) in enumerate(points))
    out = np.empty((queries.shape[0], k), dtype=np.float64)
    for i, (x, y) in enumerate(queries):
        for j, (d, _) in enumerate(tree.nearest(float(x), float(y), k=k)):
            out[i, j] = d
    return out
