"""Nearest location circle (NLC) construction.

This is the pre-processing step of both MaxFirst and MaxOverlap: for every
customer object ``o``, find its ``k`` nearest service sites and materialise
the ``k`` concentric NLCs with their Definition 2 scores.  The paper
budgets ``O(|O| log |P|)`` for this step using an R-tree over the sites; we
offer three engines and pick automatically:

* ``"brute"`` — chunked brute force, served by the compiled ``knn_brute``
  kernel when available (``REPRO_NO_CKERNEL=1`` forces the numpy
  ``argpartition`` fallback; both paths are bit-identical, including the
  ``(distance, index)`` tie-break); fastest when ``|P|`` is
  small-to-moderate (the paper's regime, ``|P| <= 1000``).
* ``"kdtree"`` — batched traversal of our
  :class:`~repro.index.kdtree.KDTree`; wins when ``|P|`` is large.
* ``"rtree"`` — batched kNN on our :class:`~repro.index.rtree.RTree`,
  the literal structure from the paper (kept for fidelity and tests).

Engine work is observable through the ``nlc_build_queries`` /
``nlc_build_chunks`` counters (see docs/observability.md), which the CI
perf gate diffs against its blessed baseline.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.core.probability import (
    ProbabilityLike,
    ProbabilityModel,
    resolve_models,
)
from repro.core.problem import MaxBRkNNProblem
from repro.geometry.rect import Rect
from repro.index._ckernel import load_knn_kernel
from repro.index.circleset import CircleSet
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.obs import metrics as _obs_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.store import NLCStore

_BRUTE_CHUNK = 2048

#: Deterministic work counters: kNN queries answered and brute-force
#: chunks processed during NLC construction.  Counted by the same
#: formula on the compiled and numpy kernel paths (like
#: ``kernel_batches``), so the perf gate sees identical values on both
#: CI arms.
_NLC_QUERIES = _obs_metrics.counter("nlc_build_queries")
_NLC_CHUNKS = _obs_metrics.counter("nlc_build_chunks")
#: High-water process RSS observed after each streamed build chunk — the
#: figure the out-of-core tier keeps at O(chunk) while the store grows.
_CHUNK_RSS_PEAK = _obs_metrics.gauge("nlc_build_chunk_rss_peak")
# Above this many sites the kd-tree's O(log |P|) per query beats the numpy
# O(|P|) row scan (empirically calibrated; exact crossover is unimportant).
_BRUTE_SITE_LIMIT = 4096


def resolve_knn_method(n_points: int, method: str = "auto") -> str:
    """Resolve ``"auto"`` to the concrete engine for ``n_points`` sites."""
    if method == "auto":
        return "brute" if n_points <= _BRUTE_SITE_LIMIT else "kdtree"
    if method not in ("brute", "kdtree", "rtree"):
        raise ValueError(f"unknown kNN method: {method!r}")
    return method


def build_knn_tree(points: np.ndarray,
                   method: str = "auto") -> KDTree | RTree | None:
    """Prebuild the spatial index :func:`knn_distances` would build for
    ``method``, so callers issuing several query batches against the same
    site set (the pipeline's ``build_nlcs`` stage across repeated runs)
    pay construction once.  Returns ``None`` for the brute engine, which
    has no index to reuse.
    """
    points = np.asarray(points, dtype=np.float64)
    method = resolve_knn_method(points.shape[0], method)
    if method == "kdtree":
        return KDTree(points)
    if method == "rtree":
        return RTree.bulk_load(
            (Rect(float(x), float(y), float(x), float(y)), i)
            for i, (x, y) in enumerate(points))
    return None


def knn_distances_indices(
        queries: np.ndarray, points: np.ndarray, k: int,
        method: str = "auto",
        tree: KDTree | RTree | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Distances *and* indices of each query's ``k`` nearest ``points``.

    Returns ``(distances, indices)``, both ``(n_queries, k)``, rows
    ascending by distance.  Every engine computes both arrays in one
    pass, so callers that need distances and neighbour identities (e.g.
    :func:`repro.core.queries.knn_sites` alongside :func:`build_nlcs`)
    never run the distance matrix twice.  Distances are
    engine-independent (ties do not affect *distances*); indices resolve
    distance ties to the lowest site index on every engine.  ``tree``
    optionally reuses a :func:`build_knn_tree` product for the matching
    method instead of rebuilding it per call.
    """
    queries = np.asarray(queries, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if k < 1 or k > points.shape[0]:
        raise ValueError(
            f"k={k} out of range for {points.shape[0]} points")
    method = resolve_knn_method(points.shape[0], method)
    if method == "brute":
        return knn_chunked(queries, points, k)
    if method == "kdtree":
        return _knn_kdtree(queries, points, k, tree=tree)
    return _knn_rtree(queries, points, k, tree=tree)


def knn_distances(queries: np.ndarray, points: np.ndarray, k: int,
                  method: str = "auto",
                  tree: KDTree | RTree | None = None) -> np.ndarray:
    """Distances from each query to its ``k`` nearest ``points``.

    Returns an ``(n_queries, k)`` array of ascending distances.  Thin
    wrapper over :func:`knn_distances_indices` for callers that only
    need radii.
    """
    return knn_distances_indices(queries, points, k,
                                 method=method, tree=tree)[0]


def build_nlcs(problem: MaxBRkNNProblem, method: str = "auto",
               keep_zero_score: bool = False,
               tree: KDTree | RTree | None = None) -> CircleSet:
    """Materialise the scored NLCs of every customer object.

    By default NLCs whose Definition 2 score is zero are dropped: a
    zero-score disk cannot change ``total_score`` anywhere, so it affects
    neither the optimum nor the optimal region.  (Under the uniform model
    only the ``k``-th NLC of each object carries score — exactly the circles
    the MaxOverlap extension in Section I uses.)  Pass
    ``keep_zero_score=True`` to keep all ``k`` disks per object, matching
    the paper's presentation literally.  ``tree`` optionally reuses a
    prebuilt :func:`build_knn_tree` index over the sites.

    An all-zero-weight instance is short-circuited before the kNN pass:
    every disk would score zero and be dropped, so the build does no
    counted work (the degenerate-instance schema tests rely on this).
    """
    if not keep_zero_score and not np.any(problem.weights):
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        return CircleSet(empty_f, empty_f, empty_f, empty_f,
                         owners=empty_i, levels=empty_i)
    dists = knn_distances(problem.customers, problem.sites, problem.k,
                          method=method, tree=tree)
    n = problem.n_customers
    k = problem.k

    score_rows = np.empty((n, k), dtype=np.float64)
    cache: dict[tuple, np.ndarray] = {}
    for i, model in enumerate(problem.models):
        base = cache.get(model.probs)
        if base is None:
            base = np.array(model.scores(1.0), dtype=np.float64)
            cache[model.probs] = base
        score_rows[i] = base
    score_rows *= problem.weights[:, None]

    owners = np.repeat(np.arange(n, dtype=np.int64), k)
    levels = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    cx = np.repeat(problem.customers[:, 0], k)
    cy = np.repeat(problem.customers[:, 1], k)
    radii = dists.reshape(-1)
    scores = score_rows.reshape(-1)

    if not keep_zero_score:
        keep = scores > 0.0
        cx, cy = cx[keep], cy[keep]
        radii, scores = radii[keep], scores[keep]
        owners, levels = owners[keep], levels[keep]

    return CircleSet(cx, cy, radii, scores, owners=owners, levels=levels)


def _score_base(model: "ProbabilityModel",
                cache: dict[tuple, np.ndarray]) -> np.ndarray:
    """Unit-weight Definition 2 score row of one model, cached by its
    probability tuple (shared across chunks of a streaming build)."""
    base = cache.get(model.probs)
    if base is None:
        base = np.array(model.scores(1.0), dtype=np.float64)
        cache[model.probs] = base
    return base


def _rss_peak_bytes() -> float | None:
    """Process peak RSS in bytes (None where ``resource`` is absent)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return float(peak * (1 if sys.platform == "darwin" else 1024))


def nlc_soa_chunk(customers: np.ndarray, weights: np.ndarray,
                  score_rows: np.ndarray, dists: np.ndarray,
                  owner_base: int, keep_zero_score: bool
                  ) -> tuple[np.ndarray, ...]:
    """Assemble one store-ready SoA chunk from its kNN distances.

    ``score_rows`` are the *unit-weight* per-customer score rows (they
    are scaled by ``weights`` here); ``owner_base`` offsets the owner
    indices so streamed chunks carry global customer ids.  The zero-
    score filter matches :func:`build_nlcs` element for element, so
    concatenating every chunk reproduces the batch build bit-for-bit.
    """
    m, k = dists.shape
    scores = (score_rows * weights[:, None]).reshape(-1)
    owners = np.repeat(
        np.arange(owner_base, owner_base + m, dtype=np.int64), k)
    levels = np.tile(np.arange(1, k + 1, dtype=np.int64), m)
    cx = np.repeat(customers[:, 0], k)
    cy = np.repeat(customers[:, 1], k)
    radii = dists.reshape(-1)
    if not keep_zero_score:
        keep = scores > 0.0
        cx, cy = cx[keep], cy[keep]
        radii, scores = radii[keep], scores[keep]
        owners, levels = owners[keep], levels[keep]
    return (cx, cy, radii, scores, owners, levels)


def stream_nlc_chunks(customer_chunks: "Iterable[np.ndarray]",
                      sites: np.ndarray, k: int,
                      weight_chunks: "Iterable[np.ndarray] | None" = None,
                      probability: "ProbabilityLike" = None,
                      method: str = "auto",
                      keep_zero_score: bool = False,
                      tree: KDTree | RTree | None = None,
                      ) -> "Iterator[tuple[np.ndarray, ...]]":
    """Yield store-ready SoA chunks from streamed customer coordinates.

    The problem-free core of :func:`build_nlcs_streaming`: the full
    customer set never materialises — each ``(m, 2)`` chunk is kNN'd,
    scored, zero-filtered and yielded as the six field arrays (global
    owner ids), ready for a :class:`repro.store.StoreWriter`.  Peak RAM
    is O(chunk) + O(sites).  ``probability`` accepts the shared forms
    (``None``, one model, one sequence); per-customer model lists need
    the problem-level API.  The ``nlc_build_chunk_rss_peak`` gauge
    records the process high-water mark after every chunk.
    """
    sites = np.asarray(sites, dtype=np.float64)
    method = resolve_knn_method(sites.shape[0], method)
    if tree is None:
        tree = build_knn_tree(sites, method)
    base = np.array(
        resolve_models(probability, int(k), 1)[0].scores(1.0),
        dtype=np.float64)
    weight_iter = iter(weight_chunks) if weight_chunks is not None else None
    offset = 0
    for chunk in customer_chunks:
        chunk = np.asarray(chunk, dtype=np.float64)
        m = chunk.shape[0]
        if weight_iter is None:
            weights = np.ones(m, dtype=np.float64)
        else:
            weights = np.asarray(next(weight_iter), dtype=np.float64)
            if weights.shape[0] != m:
                raise ValueError(
                    "weight chunk length does not match customer chunk")
        dists = knn_distances(chunk, sites, k, method=method, tree=tree)
        yield nlc_soa_chunk(chunk, weights,
                            np.broadcast_to(base, (m, base.shape[0])),
                            dists, offset, keep_zero_score)
        offset += m
        rss = _rss_peak_bytes()
        if rss is not None:
            _CHUNK_RSS_PEAK.observe_max(rss)


def build_nlcs_streaming(problem: MaxBRkNNProblem,
                         store: str | None = None,
                         chunk_size: int = 65536,
                         method: str = "auto",
                         keep_zero_score: bool = False,
                         tree: KDTree | RTree | None = None) -> "NLCStore":
    """Build the NLC set straight into a storage backend, chunk by chunk.

    The streaming sibling of :func:`build_nlcs`: customers are processed
    in ``chunk_size`` slices and each finished SoA chunk goes straight
    into a :func:`repro.store.writer` reservation of ``n * k`` rows, so
    peak RAM stays O(chunk) while the store grows to O(n) — the basis of
    the out-of-core tier (``store="memmap"``).  Returns the sealed
    :class:`repro.store.NLCStore`; attach views with
    :func:`repro.store.attach` / ``attach_slice``.

    The attached arrays are bit-identical to ``build_nlcs(problem)`` for
    every backend and chunk size (per-chunk kNN, scoring and the
    zero-score filter are element-wise identical; chunks concatenate in
    customer order).  Work counters also match whenever ``chunk_size``
    is a multiple of the brute engine's internal chunk (2048), because
    only the final chunk is then partial — the identity tests pin this.
    The all-zero-weight short-circuit of :func:`build_nlcs` applies: the
    sealed store is empty and no counted work runs.
    """
    from repro import store as repro_store

    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    n, k = problem.n_customers, problem.k
    degenerate = not keep_zero_score and not np.any(problem.weights)
    writer = repro_store.writer(0 if degenerate else n * k, store)
    try:
        if not degenerate:
            if tree is None:
                tree = build_knn_tree(
                    problem.sites,
                    resolve_knn_method(problem.n_sites, method))
            cache: dict[tuple, np.ndarray] = {}
            score_rows = np.empty((0, k), dtype=np.float64)
            for start in range(0, n, chunk_size):
                stop = min(start + chunk_size, n)
                m = stop - start
                if score_rows.shape[0] != m:
                    score_rows = np.empty((m, k), dtype=np.float64)
                for i in range(start, stop):
                    score_rows[i - start] = _score_base(
                        problem.models[i], cache)
                dists = knn_distances(problem.customers[start:stop],
                                      problem.sites, k,
                                      method=method, tree=tree)
                writer.append(nlc_soa_chunk(
                    problem.customers[start:stop],
                    problem.weights[start:stop], score_rows, dists,
                    start, keep_zero_score))
                rss = _rss_peak_bytes()
                if rss is not None:
                    _CHUNK_RSS_PEAK.observe_max(rss)
    except BaseException:
        writer.abort()
        raise
    return writer.finalize()


def nlc_space(nlcs: CircleSet, margin_fraction: float = 1e-6) -> Rect:
    """The data space MaxFirst partitions: the bounding box of all NLCs.

    Locations outside every NLC have zero influence, so no optimal region
    (of positive score) can extend past this box.  A relative margin keeps
    circle/boundary tangencies strictly interior.
    """
    box = nlcs.bounding_box()
    margin = max(box.width, box.height, 1.0) * margin_fraction
    return box.expanded(margin)


# ---------------------------------------------------------------------- #
# Engines
# ---------------------------------------------------------------------- #

def knn_chunked(queries: np.ndarray, points: np.ndarray,
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """Chunked brute-force kNN: ``(distances, indices)``, both
    ``(n_queries, k)``.

    The single implementation behind :func:`knn_distances_indices`'s
    brute engine and :func:`repro.core.queries.knn_sites`.  The hot path
    is the compiled ``knn_brute`` kernel (a bounded (distance², index)
    max-heap per query — no distance-matrix scratch at all); with
    ``REPRO_NO_CKERNEL=1`` or when the kernel is unavailable, the numpy
    ``argpartition`` fallback computes bit-identical results, chunked to
    bound its scratch at ``_BRUTE_CHUNK * |points|`` floats.  On both
    paths each row's ``k`` winners follow the deterministic
    ``(distance, index)`` tie-break — equidistant sites always resolve
    to the lowest index, even when the tie straddles the selection
    boundary.
    """
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = queries.shape[0]
    n_points = points.shape[0]
    if k < 1 or k > n_points:
        raise ValueError(f"k={k} out of range for {n_points} points")
    dists = np.empty((n, k), dtype=np.float64)
    indices = np.empty((n, k), dtype=np.int64)
    # Counted by formula, identically on both kernel paths.
    _NLC_QUERIES.add(n)
    _NLC_CHUNKS.add(-(-n // _BRUTE_CHUNK))
    kernel = load_knn_kernel()
    if kernel is not None:
        for start in range(0, n, _BRUTE_CHUNK):
            stop = min(start + _BRUTE_CHUNK, n)
            rc = kernel(queries[start:stop].ctypes.data, stop - start,
                        points.ctypes.data, n_points, k,
                        dists[start:stop].ctypes.data,
                        indices[start:stop].ctypes.data)
            if rc == 0:
                continue
            # Allocation failure inside the kernel (k was validated
            # above): fall through to the numpy path for the whole
            # batch rather than trust partial output.
            _knn_chunked_numpy(queries, points, k, dists, indices)
            return dists, indices
        return dists, indices
    _knn_chunked_numpy(queries, points, k, dists, indices)
    return dists, indices


def _knn_chunked_numpy(queries: np.ndarray, points: np.ndarray, k: int,
                       dists: np.ndarray, indices: np.ndarray) -> None:
    """Numpy fallback body of :func:`knn_chunked` (fills ``dists`` /
    ``indices`` in place)."""
    n = queries.shape[0]
    n_points = points.shape[0]
    px = points[:, 0]
    py = points[:, 1]
    # One row-index column vector for every full chunk; only the final
    # partial chunk needs a shorter slice of it.
    rows = np.arange(min(_BRUTE_CHUNK, n), dtype=np.int64)[:, None]
    full_tile = (np.tile(np.arange(n_points, dtype=np.int64),
                         (min(_BRUTE_CHUNK, n), 1))
                 if k >= n_points else None)
    for start in range(0, n, _BRUTE_CHUNK):
        stop = min(start + _BRUTE_CHUNK, n)
        chunk = queries[start:stop]
        dx = chunk[:, 0:1] - px[None, :]
        dy = chunk[:, 1:2] - py[None, :]
        d2 = dx * dx + dy * dy
        if full_tile is None:
            part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        else:
            part = full_tile[:stop - start]
        r = rows[:stop - start]
        cand = d2[r, part]
        order = np.lexsort((part, cand), axis=1)
        sel_idx = part[r, order]
        sel_d2 = cand[r, order]
        if full_tile is None:
            _fix_boundary_ties(d2, sel_idx, sel_d2)
        dists[start:stop] = np.sqrt(sel_d2)
        indices[start:stop] = sel_idx


def _fix_boundary_ties(d2: np.ndarray, sel_idx: np.ndarray,
                       sel_d2: np.ndarray) -> None:
    """Re-select rows where a distance tie straddles the ``argpartition``
    boundary (in place).

    ``argpartition`` picks an *arbitrary* subset of a tie group that
    crosses position ``k``; sorting afterwards fixes the order of the
    chosen ``k`` but not which indices were chosen.  Rows where the
    k-th distance has more ties in the full row than in the selection
    are re-selected by the strict ``(distance², index)`` rule, so the
    winners — not just their order — are deterministic and match the
    compiled kernel bit for bit.
    """
    kth = sel_d2[:, -1:]
    row_ties = (d2 == kth).sum(axis=1)
    sel_ties = (sel_d2 == kth).sum(axis=1)
    k = sel_idx.shape[1]
    for row in np.flatnonzero(row_ties > sel_ties):
        full = np.argsort(d2[row], kind="stable")[:k]
        sel_idx[row] = full
        sel_d2[row] = d2[row, full]


def _knn_kdtree(
        queries: np.ndarray, points: np.ndarray, k: int,
        tree: KDTree | RTree | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    if not isinstance(tree, KDTree):
        tree = KDTree(points)
    _NLC_QUERIES.add(queries.shape[0])
    return tree.query_batch(queries, k)


def _knn_rtree(
        queries: np.ndarray, points: np.ndarray, k: int,
        tree: KDTree | RTree | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    if not isinstance(tree, RTree):
        tree = RTree.bulk_load(
            (Rect(float(x), float(y), float(x), float(y)), i)
            for i, (x, y) in enumerate(points))
    _NLC_QUERIES.add(queries.shape[0])
    return tree.nearest_batch(queries, k)
