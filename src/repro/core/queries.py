"""Query operators over a MaxBRkNN instance.

MaxFirst answers the *optimal region* question; a site planner also asks
the surrounding reverse-nearest-neighbour questions the paper's related
work covers (Korn & Muthukrishnan's influence sets, Wong et al.'s BRkNN):

* :func:`knn_sites` — each customer's ``k`` nearest existing sites.
* :func:`brknn_of_site` — the (weighted) influence set of an existing
  site: which customers rank it among their ``k`` nearest, at what rank.
* :func:`site_influence` — the current influence of every existing site.
* :func:`impact_of_new_site` — the competitive what-if: opening a site at
  ``(x, y)`` wins customers and pushes incumbents down one rank; returns
  the newcomer's gain and each incumbent's loss.

All operators share the instance's probability/weight semantics, so a
site's influence is ``sum over customers of w(o) * prob_rank(o)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.nlc import knn_chunked
from repro.core.problem import MaxBRkNNProblem


def knn_sites(problem: MaxBRkNNProblem) -> np.ndarray:
    """Index matrix of each customer's ``k`` nearest sites.

    Returns an ``(n_customers, k)`` int array; :func:`~repro.core.nlc.knn_chunked`'s
    ``(distance, index)`` tie-break makes the result deterministic.
    """
    return knn_chunked(problem.customers, problem.sites, problem.k)[1]


@dataclass(frozen=True)
class InfluenceSet:
    """The BRkNN influence set of one site.

    ``members`` maps customer index to the site's rank (1-based) in that
    customer's nearest-site list; ``influence`` is the probability- and
    weight-adjusted total.
    """

    site: int
    members: dict[int, int]
    influence: float

    @property
    def cardinality(self) -> int:
        """Plain BRkNN set size (the unweighted notion)."""
        return len(self.members)


def brknn_of_site(problem: MaxBRkNNProblem, site_index: int,
                  ranks: np.ndarray | None = None) -> InfluenceSet:
    """The influence set of an existing site (``BRkNN(p, k, O, P)``).

    ``ranks`` optionally reuses a precomputed :func:`knn_sites` matrix.
    """
    if not 0 <= site_index < problem.n_sites:
        raise ValueError(
            f"site_index {site_index} out of range "
            f"[0, {problem.n_sites})")
    if ranks is None:
        ranks = knn_sites(problem)
    members: dict[int, int] = {}
    influence = 0.0
    rows, cols = np.nonzero(ranks == site_index)
    for customer, rank0 in zip(rows.tolist(), cols.tolist()):
        rank = rank0 + 1
        members[customer] = rank
        influence += (problem.weights[customer]
                      * problem.models[customer].probs[rank0])
    return InfluenceSet(site=site_index, members=members,
                        influence=influence)


def site_influence(problem: MaxBRkNNProblem,
                   ranks: np.ndarray | None = None) -> np.ndarray:
    """Current influence of every existing site (vectorised).

    ``result[j] = sum over customers ranking j at position i of
    w(o) * prob_i(o)`` — the denominator against which a new site's gain
    is judged.  ``ranks`` optionally reuses a precomputed
    :func:`knn_sites` matrix (the serving layer computes it once per
    published instance and passes it to every operator).
    """
    if ranks is None:
        ranks = knn_sites(problem)
    n, k = ranks.shape
    prob_rows = np.empty((n, k), dtype=np.float64)
    for i, model in enumerate(problem.models):
        prob_rows[i] = model.probs
    contributions = prob_rows * problem.weights[:, None]
    out = np.zeros(problem.n_sites, dtype=np.float64)
    np.add.at(out, ranks.reshape(-1), contributions.reshape(-1))
    return out


@dataclass(frozen=True)
class NewSiteImpact:
    """What happens if a new site opens at ``(x, y)``.

    ``gain`` is the newcomer's influence.  ``customer_ranks`` maps each
    won customer to the rank the newcomer takes.  ``incumbent_losses``
    maps existing-site index to the influence it loses: for a customer
    won at rank ``i``, each incumbent previously at rank ``j >= i``
    slides to ``j + 1`` (the old ``k``-th drops out entirely).
    """

    x: float
    y: float
    gain: float
    customer_ranks: dict[int, int]
    incumbent_losses: dict[int, float] = field(default_factory=dict)

    @property
    def customers_won(self) -> int:
        return len(self.customer_ranks)

    def total_incumbent_loss(self) -> float:
        return sum(self.incumbent_losses.values())


def impact_of_new_site(problem: MaxBRkNNProblem, x: float, y: float,
                       ranks: np.ndarray | None = None) -> NewSiteImpact:
    """Competitive what-if analysis for a candidate location.

    Strict-distance semantics (consistent with the library's region
    semantics): the newcomer takes rank ``i`` for a customer when it is
    strictly closer than the current ``i``-th site; exact ties leave the
    incumbent in place.  ``ranks`` optionally reuses a precomputed
    :func:`knn_sites` matrix.
    """
    x = float(x)
    y = float(y)
    if ranks is None:
        ranks = knn_sites(problem)
    customers = problem.customers
    sites = problem.sites

    d_new = np.hypot(customers[:, 0] - x, customers[:, 1] - y)
    d_sites = np.hypot(customers[:, 0:1] - sites[:, 0][ranks],
                       customers[:, 1:2] - sites[:, 1][ranks])
    # Rank the newcomer takes per customer: it must be STRICTLY closer
    # than an incumbent to displace it (exact ties leave the incumbent),
    # so count incumbents at distance <= d_new; rank > k means the
    # newcomer misses the top k.
    closer = (d_sites <= d_new[:, None]).sum(axis=1)
    new_rank = closer + 1

    gain = 0.0
    customer_ranks: dict[int, int] = {}
    incumbent_losses: dict[int, float] = {}
    k = problem.k
    for customer in np.flatnonzero(new_rank <= k).tolist():
        rank = int(new_rank[customer])
        customer_ranks[customer] = rank
        weight = float(problem.weights[customer])
        probs = problem.models[customer].probs
        gain += weight * probs[rank - 1]
        # Incumbents from the newcomer's rank onward slide one down.
        for j in range(rank - 1, k):
            incumbent = int(ranks[customer, j])
            old = probs[j]
            new = probs[j + 1] if j + 1 < k else 0.0
            loss = weight * (old - new)
            # repro: float-eq(exact-zero skip is an optimisation only: a zero product means the rank shift changes nothing for this incumbent, and any nonzero loss — however tiny — must be recorded)
            if loss != 0.0:
                incumbent_losses[incumbent] = (
                    incumbent_losses.get(incumbent, 0.0) + loss)
    return NewSiteImpact(x=x, y=y, gain=gain,
                         customer_ranks=customer_ranks,
                         incumbent_losses=incumbent_losses)
