"""Backends that compute a quadrant's ``Q.I`` / ``Q.C`` sets and bounds.

The paper computes ``Q.I`` with a range query on an R-tree over the NLCs
(Section IV-A).  We provide two interchangeable backends:

* :class:`VectorBackend` — the default.  Exploits that a child quadrant's
  intersecting set is a subset of its parent's, so each classification only
  re-tests the parent's survivors, vectorised over numpy arrays.
* :class:`RTreeBackend` — the literal construction from the paper: a range
  query on an R-tree of NLC bounding boxes followed by the exact disk
  predicates.

Both return identical results (asserted by tests and measured by the
backend ablation benchmark); they differ only in constant factors.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.quadrant import Quadrant
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.index.rtree import RTree


class ClassificationBackend(Protocol):
    """The contract both backends (and the sharded engine's bound-synced
    wrapper) satisfy: candidate seeding plus scalar/batched quadrant
    classification."""

    def root_candidates(self) -> np.ndarray:
        ...

    def classify(self, rect: Rect, parent_candidates: np.ndarray,
                 depth: int) -> Quadrant:
        ...

    def classify_batch(self, rects: list[Rect],
                       parent_candidates: np.ndarray,
                       depth: int) -> list[Quadrant]:
        ...


class VectorBackend:
    """Vectorised classification with hierarchical candidate passing.

    Built on the two :class:`CircleSet` kernels: :meth:`classify` wraps
    the scalar ``classify_rect`` and :meth:`classify_batch` the batched
    ``classify_rects`` — one broadcast pass for a whole split frontier,
    which is how ``MaxFirst._phase1`` classifies all children of a split
    in a single kernel call (DESIGN.md §5.1).
    """

    name = "vector"

    def __init__(self, nlcs: CircleSet, graze_tol: float = 0.0) -> None:
        self.nlcs = nlcs
        self.graze_tol = graze_tol
        # One prepared kernel for the whole search: the packed gather
        # matrix is built once, not per split.
        self._classifier = nlcs.rect_classifier(graze_tol)

    def root_candidates(self) -> np.ndarray:
        """Candidate set for the root quadrant: every NLC."""
        return np.arange(len(self.nlcs), dtype=np.int64)

    def classify(self, rect: Rect, parent_candidates: np.ndarray,
                 depth: int) -> Quadrant:
        """Build the :class:`Quadrant` for ``rect``.

        ``parent_candidates`` must be a superset of the NLCs intersecting
        ``rect`` — the parent quadrant's ``Q.I`` by construction.
        """
        intersecting, containing_mask, max_hat, min_hat = (
            self.nlcs.classify_rect(rect, parent_candidates,
                                    graze_tol=self.graze_tol))
        return Quadrant(rect=rect, intersecting=intersecting,
                        containing_mask=containing_mask,
                        max_hat=max_hat, min_hat=min_hat, depth=depth)

    def classify_batch(self, rects: list[Rect],
                       parent_candidates: np.ndarray,
                       depth: int) -> list[Quadrant]:
        """Classify sibling rectangles against their shared parent
        candidates in one batched kernel call.

        Four siblings forming a 2x2 split grid — the dominant Phase I
        shape, from ``Rect.split_at`` — take the compiled single-pass
        kernel; anything else (echo-extended frontiers, deduped
        degenerate splits, no C compiler) takes the generic numpy
        batch kernel.  Both produce bit-identical quadrants.
        """
        results = None
        if len(rects) == 4:
            r0, r1, r2, r3 = rects
            px = r0.xmax
            py = r0.ymax
            if (r1.xmin == px and r1.ymax == py and r2.xmax == px
                    and r2.ymin == py and r3.xmin == px and r3.ymin == py
                    and r1.ymin == r0.ymin and r2.xmin == r0.xmin
                    and r3.xmax == r1.xmax and r3.ymax == r2.ymax):
                results = self._classifier.quad_split(
                    r0.xmin, r0.ymin, r1.xmax, r2.ymax, px, py,
                    parent_candidates)
        if results is None:
            results = self._classifier.classify(rects, parent_candidates)
        return [Quadrant(rect=rect, intersecting=intersecting,
                         containing_mask=containing_mask,
                         max_hat=max_hat, min_hat=min_hat, depth=depth)
                for rect, (intersecting, containing_mask, max_hat, min_hat)
                in zip(rects, results)]


class RTreeBackend:
    """Classification through R-tree range queries (paper-faithful)."""

    name = "rtree"

    def __init__(self, nlcs: CircleSet, graze_tol: float = 0.0,
                 max_entries: int = 16) -> None:
        self.nlcs = nlcs
        self.graze_tol = graze_tol
        self._tree = RTree.bulk_load(
            ((nlcs.circle(i).bounding_box(), i) for i in range(len(nlcs))),
            max_entries=max_entries)

    def root_candidates(self) -> np.ndarray:
        # The R-tree backend re-queries from the root each time; the
        # candidate array is unused but kept for interface parity.
        return np.arange(len(self.nlcs), dtype=np.int64)

    def classify(self, rect: Rect, parent_candidates: np.ndarray,
                 depth: int) -> Quadrant:
        hits = self._tree.search(rect)
        if hits:
            candidates = np.array(sorted(hits), dtype=np.int64)
        else:
            candidates = np.zeros(0, dtype=np.int64)
        # The range query is over bounding boxes; apply the exact disk
        # predicates to the (small) hit set.
        intersecting, containing_mask, max_hat, min_hat = (
            self.nlcs.classify_rect(rect, candidates,
                                    graze_tol=self.graze_tol))
        return Quadrant(rect=rect, intersecting=intersecting,
                        containing_mask=containing_mask,
                        max_hat=max_hat, min_hat=min_hat, depth=depth)

    def classify_batch(self, rects: list[Rect],
                       parent_candidates: np.ndarray,
                       depth: int) -> list[Quadrant]:
        """Per-rect R-tree range queries: each sibling has its own hit
        set, so there is no shared candidate batch to amortise — this
        backend stays paper-literal and loops."""
        return [self.classify(rect, parent_candidates, depth)
                for rect in rects]


def make_backend(name: str, nlcs: CircleSet,
                 graze_tol: float = 0.0) -> ClassificationBackend:
    """Backend factory: ``"vector"`` (default) or ``"rtree"``."""
    if name == "vector":
        return VectorBackend(nlcs, graze_tol=graze_tol)
    if name == "rtree":
        return RTreeBackend(nlcs, graze_tol=graze_tol)
    raise ValueError(f"unknown bounds backend: {name!r}")
