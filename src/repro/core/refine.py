"""Compatibility refinement of a quadrant's upper bound.

Theorem 1's ``m̂ax`` adds the scores of *every* disk whose interior meets
the quadrant, even when two of those disks cannot both contain any single
location in it.  Usually that slack disappears after a few splits — but
not always.  Two NLCs that are *exactly tangent* (pervasive on gridded
data: the NLCs of two customers equidistant from a shared nearest site
touch at that site) enclose a quadratically-thin cusp.  Quadrants
straddling the cusp keep both circles in ``Q.I``, so their ``m̂ax`` stays
one score too high, they are never consistent, Theorem 3 never applies
(each one's ``Q.I`` contains a disk outside every found cover), and the
cusp tessellation grows like ``2^(depth/2)``.  In exact arithmetic the
paper's Algorithm 1 does not terminate on such inputs.

The refinement closes the gap soundly.  For the disks in ``Q.I - Q.C``:

1. certify *incompatible pairs* — two disks that provably share no point
   of the quadrant: their disks are disjoint/tangent, or their lens lies
   in a bounding box that misses the quadrant;
2. any location in the quadrant scores ``sum(Q.C)`` plus the weight of a
   *compatible subset* (a clique of the compatibility graph), so
   ``sum(Q.C) + max-weight-clique`` is a valid upper bound, usually far
   below ``m̂ax`` at a cusp;
3. for the Theorem-3 side: every potentially-optimal compatible subset
   ``S`` sits inside the maximal consistent region covered by
   ``Q.C ∪ S``, so if each such subset extends a found cover, the
   quadrant's optima are all already discovered and it can be pruned.

Clique problems are NP-hard in general; here the vertex sets are the
handful of boundary disks of one quadrant, and the computation only runs
after ``m`` fruitless same-frontier splits (the paper's own trigger for
degeneracy handling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.obs import metrics as _obs_metrics

#: Deterministic work counter: pairwise compatibility certificates
#: evaluated (identical on the scalar and vectorised adjacency builders
#: — both decide all n·(n-1)/2 pairs).
_REFINE_PAIR_TESTS = _obs_metrics.counter("refine_pair_tests")

# Above this many boundary disks, skip refinement (the clique bound could
# get expensive, and large boundary sets mean the quadrant is still fat —
# regular splitting will thin it out first).
MAX_BOUNDARY_DISKS = 32
# Cap on the enumeration of near-optimal cliques for the Theorem 3 side.
MAX_ENUMERATED_CLIQUES = 64


@dataclass(frozen=True)
class Refinement:
    """Outcome of a refinement pass over one quadrant.

    ``refined_max`` is the compatibility-aware upper bound (``<= m̂ax``).
    ``top_cliques`` holds the compatible subsets (as index tuples into the
    NLC set) whose value reaches ``value_floor``; ``complete`` is False
    when enumeration was truncated (callers must then be conservative).
    """

    refined_max: float
    top_cliques: tuple[tuple[int, ...], ...]
    complete: bool


def incompatible_in_rect(nlcs: CircleSet, i: int, j: int, rect: Rect,
                         tol: float) -> bool:
    """True when disks ``i`` and ``j`` provably share no point of
    ``rect``.

    Two sound certificates:

    * the closed disks are disjoint or merely tangent
      (``d >= r_i + r_j - tol``) — their common region is empty or a
      single point, which cannot host a full-dimensional optimum;
    * the disks overlap in a lens whose bounding box (chord box expanded
      by the larger sagitta) misses the rectangle.

    Returns False (compatible) whenever no certificate applies — e.g. one
    disk inside the other.
    """
    xi, yi, ri = float(nlcs.cx[i]), float(nlcs.cy[i]), float(nlcs.r[i])
    xj, yj, rj = float(nlcs.cx[j]), float(nlcs.cy[j]), float(nlcs.r[j])
    # sqrt(dx² + dy²) rather than hypot: math.hypot (correctly rounded)
    # and np.hypot (platform libm) can differ in the last ulp, while
    # mul/add/sqrt are correctly rounded in both — keeping this form is
    # what makes _adjacency_vector bit-identical to this reference.
    dx = xj - xi
    dy = yj - yi
    d = math.sqrt(dx * dx + dy * dy)
    if d >= ri + rj - tol:
        return True
    if d <= abs(ri - rj):
        # One disk inside the other: the lens is the smaller disk, which
        # intersects the rect (both disks are in Q.I).
        return False
    # Proper lens: bound it by the chord box padded by how far each
    # bounding arc reaches from the chord line.  The arc of a circle
    # inside the other disk is the MINOR arc when the other centre lies
    # beyond that circle's chord distance, but the MAJOR arc when the
    # other disk nearly contains it — then the reach is radius PLUS the
    # centre's chord distance (the near-containment case that a
    # minor-arc-only sagitta would under-estimate).
    ell = (d * d + ri * ri - rj * rj) / (2.0 * d)
    h2 = max(ri * ri - ell * ell, 0.0)
    h = math.sqrt(h2)
    ux = (xj - xi) / d
    uy = (yj - yi) / d
    px = xi + ell * ux
    py = yi + ell * uy
    chord_x = (px - h * uy, px + h * uy)
    chord_y = (py + h * ux, py - h * ux)
    # Chord-line distances of the two centres.
    dist_i = abs(ell)
    dist_j = abs(d - ell)
    reach_i = ri + dist_i if d < rj else ri - dist_i
    reach_j = rj + dist_j if d < ri else rj - dist_j
    pad = max(reach_i, reach_j, 0.0) + tol
    lens_box = Rect(min(chord_x) - pad, min(chord_y) - pad,
                    max(chord_x) + pad, max(chord_y) + pad)
    return not lens_box.intersects(rect)


def _adjacency_scalar(nlcs: CircleSet, boundary: np.ndarray, rect: Rect,
                      tol: float) -> tuple[np.ndarray, bool]:
    """Pairwise compatibility graph via scalar ``incompatible_in_rect``."""
    n = len(boundary)
    adj = np.ones((n, n), dtype=bool)
    any_incompatible = False
    for a in range(n):
        adj[a, a] = False
        for b in range(a + 1, n):
            if incompatible_in_rect(nlcs, int(boundary[a]),
                                    int(boundary[b]), rect, tol):
                adj[a, b] = adj[b, a] = False
                any_incompatible = True
    return adj, any_incompatible


def _adjacency_vector(nlcs: CircleSet, boundary: np.ndarray, rect: Rect,
                      tol: float) -> tuple[np.ndarray, bool]:
    """Vectorised pairwise ``incompatible_in_rect`` over a boundary set.

    Mirrors the scalar certificate arithmetic operation for operation —
    same subtractions, products and quotients in the same grouping — so
    both builders agree on every pair (asserted by a property test; the
    scalar path stays the reference and the ``legacy`` hot path's
    builder).  The matrix is symmetrised from its upper triangle, like
    the scalar double loop that only evaluates ``a < b``.

    Degenerate concentric pairs (``d == 0``) divide by zero inside the
    lens arithmetic; those lanes are containment-compatible before the
    lens certificate is consulted, exactly as the scalar early return,
    so the NaNs never reach a decision.
    """
    cx = nlcs.cx[boundary]
    cy = nlcs.cy[boundary]
    r = nlcs.r[boundary]
    xi = cx[:, None]
    yi = cy[:, None]
    ri = r[:, None]
    rj = r[None, :]
    dx = cx[None, :] - xi
    dy = cy[None, :] - yi
    # NOT np.hypot: see the matching comment in incompatible_in_rect —
    # sqrt(dx² + dy²) is the form both builders can round identically.
    d = np.sqrt(dx * dx + dy * dy)
    disjoint = d >= ri + rj - tol
    inside = d <= np.abs(ri - rj)
    with np.errstate(divide="ignore", invalid="ignore"):
        ell = (d * d + ri * ri - rj * rj) / (2.0 * d)
        h = np.sqrt(np.maximum(ri * ri - ell * ell, 0.0))
        ux = dx / d
        uy = dy / d
    px = xi + ell * ux
    py = yi + ell * uy
    chord_x1 = px - h * uy
    chord_x2 = px + h * uy
    chord_y1 = py + h * ux
    chord_y2 = py - h * ux
    dist_i = np.abs(ell)
    dist_j = np.abs(d - ell)
    reach_i = np.where(d < rj, ri + dist_i, ri - dist_i)
    reach_j = np.where(d < ri, rj + dist_j, rj - dist_j)
    pad = np.maximum(np.maximum(reach_i, reach_j), 0.0) + tol
    lens_miss = ((np.minimum(chord_x1, chord_x2) - pad > rect.xmax)
                 | (np.maximum(chord_x1, chord_x2) + pad < rect.xmin)
                 | (np.minimum(chord_y1, chord_y2) - pad > rect.ymax)
                 | (np.maximum(chord_y1, chord_y2) + pad < rect.ymin))
    incompatible = disjoint | (~inside & lens_miss)
    upper = np.triu(incompatible, 1)
    incompatible = upper | upper.T
    adj = ~incompatible
    np.fill_diagonal(adj, False)
    return adj, bool(upper.any())


# Below this many boundary disks the vectorised adjacency builder loses
# to the scalar pair loop on fixed numpy dispatch overhead.
_VECTOR_ADJACENCY_MIN = 8


def refine_quadrant(nlcs: CircleSet, boundary: np.ndarray, rect: Rect,
                    base_score: float, value_floor: float,
                    tol: float, vectorized: bool = False
                    ) -> Refinement | None:
    """Compatibility-refined upper bound for one quadrant.

    ``boundary`` indexes the disks in ``Q.I - Q.C``; ``base_score`` is
    ``sum(Q.C)``; ``value_floor`` is the score below which subsets are
    irrelevant (the current MaxMin minus tolerance).  ``vectorized``
    selects the batched adjacency builder for large boundary sets (the
    solver enables it on the ``batched`` hot path).  Returns ``None``
    when refinement does not apply (too many disks, or no incompatible
    pair — then the refined bound would equal ``m̂ax``).
    """
    n = len(boundary)
    if n < 2 or n > MAX_BOUNDARY_DISKS:
        return None
    _REFINE_PAIR_TESTS.add(n * (n - 1) // 2)
    if vectorized and n >= _VECTOR_ADJACENCY_MIN:
        adj, any_incompatible = _adjacency_vector(nlcs, boundary, rect, tol)
    else:
        adj, any_incompatible = _adjacency_scalar(nlcs, boundary, rect, tol)
    if not any_incompatible:
        return None

    weights = nlcs.scores[boundary]
    best_weight = _max_weight_clique(adj, weights)
    refined_max = base_score + best_weight

    clique_floor = value_floor - base_score
    cliques, complete = _enumerate_heavy_cliques(adj, weights,
                                                 clique_floor)
    top = tuple(tuple(int(boundary[v]) for v in clique)
                for clique in cliques)
    return Refinement(refined_max=refined_max, top_cliques=top,
                      complete=complete)


# ---------------------------------------------------------------------- #
# Small exact clique machinery (n <= MAX_BOUNDARY_DISKS)
# ---------------------------------------------------------------------- #

def _max_weight_clique(adj: np.ndarray, weights: np.ndarray) -> float:
    """Exact maximum-weight clique via branch and bound on bitmasks.

    The search state lives in Python ints and float lists (not numpy
    scalars): the expand loop runs tens of thousands of times per
    refinement-heavy Phase I, and ``np.float64`` arithmetic in it costs
    more than the branching itself.  Values are identical — ``tolist``
    round-trips float64 exactly.
    """
    n = adj.shape[0]
    order = np.argsort(-weights)
    adj_bits = [0] * n
    for a in range(n):
        bits = 0
        for b in range(n):
            if adj[order[a], order[b]]:
                bits |= 1 << b
        adj_bits[a] = bits
    w_arr = weights[order]
    w = w_arr.tolist()
    suffix = np.concatenate((np.cumsum(w_arr[::-1])[::-1], [0.0])).tolist()

    best = 0.0

    def expand(candidates: int, current: float) -> None:
        nonlocal best
        if current > best:
            best = current
        remaining = candidates
        while remaining:
            low = remaining & -remaining
            v = low.bit_length() - 1
            # Even taking every remaining candidate cannot beat best.
            if current + suffix[v] <= best:
                return
            expand(candidates & adj_bits[v], current + w[v])
            candidates &= ~low
            remaining ^= low

    expand((1 << n) - 1, 0.0)
    return best


def _enumerate_heavy_cliques(adj: np.ndarray, weights: np.ndarray,
                             floor: float
                             ) -> tuple[list[tuple[int, ...]], bool]:
    """All *maximal* cliques of weight ``>= floor`` (capped).

    Maximality matters: the Theorem-3 side only needs the heaviest
    achievable subsets — any sub-clique of a found one is covered a
    fortiori.  Returns ``(cliques, complete)``; ``complete=False`` when
    the cap was hit and callers must not prune.
    """
    n = adj.shape[0]
    adj_bits = [0] * n
    for a in range(n):
        bits = 0
        for b in range(n):
            if adj[a, b]:
                bits |= 1 << b
        adj_bits[a] = bits
    total = float(weights.sum())
    wl = weights.tolist()

    out: list[tuple[int, ...]] = []
    complete = True

    def weight_of(mask: int) -> float:
        s = 0.0
        v = mask
        while v:
            low = v & -v
            s += wl[low.bit_length() - 1]
            v ^= low
        return s

    def bron(r: int, p: int, x: int, r_weight: float,
             p_weight: float) -> None:
        nonlocal complete
        if not complete:
            return
        if r_weight + p_weight < floor:
            return  # cannot reach the floor even taking all of P
        if p == 0 and x == 0:
            if r_weight >= floor:
                if len(out) >= MAX_ENUMERATED_CLIQUES:
                    complete = False
                    return
                clique = []
                v = r
                while v:
                    low = v & -v
                    clique.append(low.bit_length() - 1)
                    v ^= low
                out.append(tuple(clique))
            return
        pivot_pool = p | x
        pivot = (pivot_pool & -pivot_pool).bit_length() - 1
        candidates = p & ~adj_bits[pivot]
        v = candidates
        while v:
            low = v & -v
            u = low.bit_length() - 1
            bron(r | low, p & adj_bits[u], x & adj_bits[u],
                 r_weight + wl[u],
                 weight_of(p & adj_bits[u]))
            p &= ~low
            x |= low
            v ^= low

    bron(0, (1 << n) - 1, 0, 0.0, total)
    return out, complete
