"""Phase II of MaxFirst: construct the optimal region from a quadrant.

Given a maximum-score quadrant ``Q``, the optimal region is the
intersection of the disks in ``Q.C``.  Algorithm 2 of the paper avoids
intersecting all of them: it orders the NLCs by the shortest distance from
the quadrant centre ``s`` to their circumference and stops as soon as the
next circumference is farther from ``s`` than any boundary point of the
overlap built so far (``d_max``) — such a disk cannot clip the region.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.geometry.arcs import ArcRegion
from repro.geometry.intersection import (IncrementalDiskIntersection,
                                         intersect_disks)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.obs import metrics as _obs_metrics

#: Deterministic work counter: optimal regions grown (one per distinct
#: cover after Phase II deduplication).
_REGION_GROWS = _obs_metrics.counter("region_grows")
#: Deterministic work counter: disks Algorithm 2 actually clipped into
#: regions (the sum of ``clipping_count`` over all grown regions) — the
#: direct measure of Phase II work the ``d_max`` early stop saves.
_PHASE2_CLIPS = _obs_metrics.counter("phase2_clips")


@dataclass(frozen=True)
class OptimalRegion:
    """One optimal region of a MaxBRkNN instance.

    Attributes
    ----------
    score:
        The influence every location in the region attains (the maximum).
    shape:
        The region geometry (intersection of NLC disks), or ``None`` for
        the degenerate zero-score case where no NLC covers the quadrant —
        then any location works and ``seed_quadrant`` is as good as any.
    seed_quadrant:
        The Phase I quadrant the region was grown from.
    cover:
        Indices (into the solver's NLC set) of the disks covering the
        quadrant — the region is exactly their intersection.
    clipping_count:
        How many of those disks Algorithm 2 actually had to intersect
        before the ``d_max`` early stop fired (a measure of the shortcut's
        effectiveness).
    """

    score: float
    shape: ArcRegion | None
    seed_quadrant: Rect
    cover: tuple[int, ...]
    clipping_count: int

    @property
    def area(self) -> float:
        if self.shape is None:
            return self.seed_quadrant.area
        return self.shape.area

    def representative_point(self) -> Point:
        """A concrete optimal location inside the region."""
        if self.shape is None:
            return self.seed_quadrant.center
        return self.shape.representative_point()

    def contains_point(self, x: float, y: float,
                       tol: float = 1e-9) -> bool:
        """True when ``(x, y)`` belongs to the optimal region."""
        if self.shape is None:
            return self.seed_quadrant.contains_point(x, y)
        return self.shape.contains_point(x, y, tol=tol)


def compute_optimal_region(quadrant_rect: Rect, cover: np.ndarray,
                           nlcs: CircleSet, score: float,
                           tol: float = 1e-9) -> OptimalRegion:
    """Algorithm 2: grow the optimal region from a quadrant.

    ``cover`` are the indices of the NLCs containing the quadrant
    (``Q.C``).  The distance ordering and the ``d_max`` stopping rule
    follow the pseudocode; the disk-intersection kernel is the
    :class:`~repro.geometry.intersection.IncrementalDiskIntersection`
    clipper, which keeps per-circle interval state across additions and
    is bit-identical to re-running ``intersect_disks`` from scratch on
    every step (the pre-PR shape of this loop, preserved as
    :func:`compute_optimal_region_reference`).  The clip ordering is
    seeded with one vectorised ``signed_boundary_distances`` call over
    the cover instead of one scalar ``Circle`` computation per disk.
    """
    _REGION_GROWS.add()
    cover_tuple = tuple(int(i) for i in cover)
    if not cover_tuple:
        return OptimalRegion(score=score, shape=None,
                             seed_quadrant=quadrant_rect,
                             cover=(), clipping_count=0)

    s = quadrant_rect.center
    if len(cover_tuple) == 1:
        only = nlcs.circle(cover_tuple[0])
        shape = intersect_disks([only], tol=tol)
        _PHASE2_CLIPS.add()
        return OptimalRegion(score=score, shape=shape,
                             seed_quadrant=quadrant_rect,
                             cover=cover_tuple, clipping_count=1)

    # Ascending (shortest distance from s to circumference, NLC index) —
    # the heap pop order of the reference path, produced by one SoA pass
    # over the CircleSet arrays.  The quadrant is inside every covering
    # disk, so the signed distance r - dist(s, centre) is non-negative
    # (up to rounding at the quadrant's own corners; clamp for safety).
    cover_arr = np.asarray(cover_tuple, dtype=np.int64)
    dist = np.maximum(
        nlcs.signed_boundary_distances(s.x, s.y, cover_arr), 0.0)
    order = np.lexsort((cover_arr, dist))

    clipper = IncrementalDiskIntersection(tol=tol)
    first = int(cover_arr[order[0]])
    second = int(cover_arr[order[1]])
    clipper.add(nlcs.circle(first))
    clipper.add(nlcs.circle(second))
    selected = [first, second]
    region = clipper.region()
    d_max = region.max_distance_from(s.x, s.y)

    for pos in range(2, order.shape[0]):
        if dist[order[pos]] >= d_max:
            break  # no remaining disk can clip the overlap (Algorithm 2)
        idx = int(cover_arr[order[pos]])
        selected.append(idx)
        clipper.add(nlcs.circle(idx))
        region = clipper.region()
        d_max = region.max_distance_from(s.x, s.y)

    _PHASE2_CLIPS.add(len(selected))
    return OptimalRegion(score=score, shape=region,
                         seed_quadrant=quadrant_rect,
                         cover=cover_tuple, clipping_count=len(selected))


def compute_optimal_region_reference(
        quadrant_rect: Rect, cover: np.ndarray, nlcs: CircleSet,
        score: float, tol: float = 1e-9) -> OptimalRegion:
    """The pre-optimisation Algorithm 2 loop, kept verbatim as the
    identity oracle for :func:`compute_optimal_region`.

    Scalar ``Circle`` heap seeding and a from-scratch
    :func:`intersect_disks` rebuild on every accepted disk.  No work
    counters — ``benchmarks/bench_phase2_nlc.py`` and the regression
    tests run it inside counter-isolated scopes to assert per-region
    identity without perturbing the gated counts.
    """
    cover_tuple = tuple(int(i) for i in cover)
    if not cover_tuple:
        return OptimalRegion(score=score, shape=None,
                             seed_quadrant=quadrant_rect,
                             cover=(), clipping_count=0)

    s = quadrant_rect.center
    if len(cover_tuple) == 1:
        only = nlcs.circle(cover_tuple[0])
        shape = intersect_disks([only], tol=tol)
        return OptimalRegion(score=score, shape=shape,
                             seed_quadrant=quadrant_rect,
                             cover=cover_tuple, clipping_count=1)

    heap: list[tuple[float, int]] = []
    for idx in cover_tuple:
        c = nlcs.circle(idx)
        d = max(c.signed_boundary_distance(s.x, s.y), 0.0)
        heap.append((d, idx))
    heapq.heapify(heap)

    _, first = heapq.heappop(heap)
    _, second = heapq.heappop(heap)
    selected = [first, second]
    region = intersect_disks(nlcs.circles(selected), tol=tol)
    d_max = region.max_distance_from(s.x, s.y)

    while heap:
        d, idx = heapq.heappop(heap)
        if d >= d_max:
            break
        selected.append(idx)
        region = intersect_disks(nlcs.circles(selected), tol=tol)
        d_max = region.max_distance_from(s.x, s.y)

    return OptimalRegion(score=score, shape=region,
                         seed_quadrant=quadrant_rect,
                         cover=cover_tuple, clipping_count=len(selected))
