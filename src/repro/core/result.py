"""Result containers for MaxBRkNN solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.quadrant import MaxFirstStats
from repro.core.region import OptimalRegion
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


@dataclass(frozen=True)
class MaxBRkNNResult:
    """Outcome of a MaxBRkNN query.

    Attributes
    ----------
    score:
        The maximum attainable influence (sum of ``w(o) * prob_i(o)`` over
        the customers won).
    regions:
        Every distinct optimal region (usually one; the problem can have
        several regions that tie at the maximum).
    nlcs:
        The scored NLC set the solver worked on — useful for follow-up
        influence queries without re-running pre-processing.
    space:
        The data space that was searched.
    stats:
        Phase I counters (``None`` for solvers without them, e.g.
        MaxOverlap returns its own stats type).
    timings:
        Wall-clock seconds per pipeline stage, keyed by stage name
        (``"nlc"``, ``"phase1"``, ``"phase2"`` for MaxFirst).
    """

    score: float
    regions: tuple[OptimalRegion, ...]
    nlcs: CircleSet
    space: Rect
    stats: MaxFirstStats | None = None
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def best_region(self) -> OptimalRegion:
        """The first optimal region (all regions tie on score)."""
        if not self.regions:
            raise ValueError("result has no regions")
        return self.regions[0]

    def optimal_location(self) -> Point:
        """A concrete optimal location (a point inside an optimal region)."""
        return self.best_region.representative_point()

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        lines = [
            f"MaxBRkNN optimum: score {self.score:.6g} attained in "
            f"{len(self.regions)} region(s)",
        ]
        for i, region in enumerate(self.regions):
            p = region.representative_point()
            lines.append(
                f"  region {i}: area {region.area:.6g}, e.g. location "
                f"({p.x:.6g}, {p.y:.6g}), {len(region.cover)} covering NLCs")
        if self.stats is not None:
            s = self.stats
            lines.append(
                f"  quadrants: {s.generated} generated, {s.splits} split, "
                f"{s.pruned_theorem2} pruned (Thm 2), "
                f"{s.pruned_theorem3} pruned (Thm 3)")
        if self.timings:
            total = ", ".join(f"{k} {v:.4f}s" for k, v in
                              self.timings.items())
            lines.append(f"  time: {total}")
        return "\n".join(lines)
