"""Probability models for the generalized MaxBRkNN problem.

A probability model ``{prob_1, ..., prob_k}`` captures how likely a
customer is to patronise its ``i``-th nearest service site (Section III of
the paper).  The model must be a probability distribution and must be
non-increasing in ``i``: Definition 2 turns it into per-NLC scores
``score(c_i) = w(o) * (prob_i - prob_{i+1})`` and Theorem 1's upper bound
is only an upper bound when those scores are non-negative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Union, cast

_SUM_TOL = 1e-9

#: Everything :func:`resolve_models` accepts as the user-facing
#: ``probability`` argument.
ProbabilityLike = Union[
    None, "ProbabilityModel", Sequence[float], Sequence["ProbabilityModel"]]


@dataclass(frozen=True)
class ProbabilityModel:
    """An immutable, validated probability model.

    Use the named constructors for the models from the paper:

    * :meth:`uniform` — equal probabilities (the MaxOverlap-compatible
      setting used in Sections VI-A/B/C);
    * :meth:`linear` — the paper's **M1** series
      ``{k/D, (k-1)/D, ..., 1/D}``, ``D = k(k+1)/2``;
    * :meth:`harmonic` — the paper's **M2** series (and experimental
      default) ``{1/C, 1/(2C), ..., 1/(kC)}``, ``C = H_k``.

    >>> ProbabilityModel.uniform(2).probs
    (0.5, 0.5)
    >>> ProbabilityModel.of(0.8, 0.2).scores()
    (0.6000000000000001, 0.2)
    """

    probs: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.probs:
            raise ValueError("probability model must have at least one entry")
        if any(p < 0.0 for p in self.probs):
            raise ValueError(f"negative probability in {self.probs}")
        total = math.fsum(self.probs)
        if abs(total - 1.0) > _SUM_TOL:
            raise ValueError(
                f"probabilities must sum to 1 (got {total!r}); "
                "use ProbabilityModel.normalized(...) to auto-normalise")
        for i in range(len(self.probs) - 1):
            if self.probs[i] < self.probs[i + 1] - _SUM_TOL:
                raise ValueError(
                    "probabilities must be non-increasing in rank "
                    f"(prob_{i + 1}={self.probs[i]} < "
                    f"prob_{i + 2}={self.probs[i + 1]}): increasing models "
                    "produce negative NLC scores, which breaks Theorem 1")

    @property
    def k(self) -> int:
        """Number of ranks the model covers."""
        return len(self.probs)

    @classmethod
    def of(cls, *probs: float) -> "ProbabilityModel":
        """Model from explicit probabilities, e.g. ``of(0.8, 0.2)``."""
        return cls(tuple(float(p) for p in probs))

    @classmethod
    def from_sequence(cls, probs: Iterable[float]) -> "ProbabilityModel":
        """Model from any iterable of probabilities."""
        return cls(tuple(float(p) for p in probs))

    @classmethod
    def normalized(cls, weights: Iterable[float]) -> "ProbabilityModel":
        """Model proportional to ``weights`` (auto-normalised)."""
        ws = [float(w) for w in weights]
        total = math.fsum(ws)
        if total <= 0:
            raise ValueError("weights must have positive sum")
        return cls(tuple(w / total for w in ws))

    @classmethod
    def uniform(cls, k: int) -> "ProbabilityModel":
        """Equal probabilities ``{1/k, ..., 1/k}`` — the classic MaxBRkNN
        semantics and the only setting MaxOverlap supports."""
        _check_k(k)
        return cls(tuple(1.0 / k for _ in range(k)))

    @classmethod
    def linear(cls, k: int) -> "ProbabilityModel":
        """The paper's M1 series: probabilities decay linearly with rank."""
        _check_k(k)
        d = k * (k + 1) / 2.0
        return cls(tuple((k - i) / d for i in range(k)))

    @classmethod
    def harmonic(cls, k: int) -> "ProbabilityModel":
        """The paper's M2 series (experimental default): probability of the
        ``i``-th nearest site inversely proportional to ``i``."""
        _check_k(k)
        c = math.fsum(1.0 / i for i in range(1, k + 1))
        return cls(tuple(1.0 / (i * c) for i in range(1, k + 1)))

    def scores(self, weight: float = 1.0) -> tuple[float, ...]:
        """Definition 2 scores of the ``k`` NLCs of an object with
        ``weight``: ``score(c_i) = w * (prob_i - prob_{i+1})`` and
        ``score(c_k) = w * prob_k``.

        The telescoping property ``sum(scores[i:]) == w * prob_i`` is what
        lets a location accumulate its exact influence from the disks
        containing it.
        """
        if weight < 0:
            raise ValueError("weight must be non-negative")
        out = []
        for i in range(self.k - 1):
            out.append(weight * (self.probs[i] - self.probs[i + 1]))
        out.append(weight * self.probs[-1])
        return tuple(out)

    def is_uniform(self, tol: float = 1e-12) -> bool:
        """True when all ranks are equally likely (MaxOverlap-compatible)."""
        return all(abs(p - self.probs[0]) <= tol for p in self.probs)

    def truncated(self, k: int) -> "ProbabilityModel":
        """The model restricted to the first ``k`` ranks, renormalised."""
        if not 1 <= k <= self.k:
            raise ValueError(f"cannot truncate model of size {self.k} to {k}")
        return ProbabilityModel.normalized(self.probs[:k])


def resolve_models(probability: ProbabilityLike, k: int,
                   n_objects: int) -> list[ProbabilityModel]:
    """Normalise the user-facing ``probability`` argument.

    Accepts ``None`` (uniform — classic MaxBRkNN), a single
    :class:`ProbabilityModel`, a plain probability sequence, or one model
    per customer object (the heterogeneous extension the paper sketches:
    "Different objects can have different probability models").
    Returns a list of ``n_objects`` models, every one of size ``k``.
    """
    if probability is None:
        model = ProbabilityModel.uniform(k)
        return [model] * n_objects
    if isinstance(probability, ProbabilityModel):
        _check_model_size(probability, k)
        return [probability] * n_objects
    entries = list(probability)
    if entries and isinstance(entries[0], ProbabilityModel):
        models = cast("list[ProbabilityModel]", entries)
        if len(models) != n_objects:
            raise ValueError(
                f"per-object models: expected {n_objects} entries, "
                f"got {len(models)}")
        for per_object in models:
            _check_model_size(per_object, k)
        return models
    model = ProbabilityModel.from_sequence(cast("Sequence[float]", entries))
    _check_model_size(model, k)
    return [model] * n_objects


def _check_model_size(model: ProbabilityModel, k: int) -> None:
    if model.k != k:
        raise ValueError(
            f"probability model has {model.k} entries but k={k}")


def _check_k(k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be a positive integer, got {k}")
