"""Influence evaluation: score candidate locations against an instance.

These utilities answer the follow-up questions a site planner asks once
the NLCs exist: *what influence would a site at (x, y) attract, and from
which customers?*  They are also the semantic ground truth the test suite
scores solver outputs against — ``influence_at`` is a literal
implementation of Definitions 3/4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.index.circleset import CircleSet


@dataclass(frozen=True)
class InfluenceBreakdown:
    """Influence of one candidate location.

    ``total`` is the paper's ``total_score`` (Definition 4); ``customers``
    maps each contributing customer index to its contribution
    ``w(o) * prob_i(o)`` where ``i`` is the rank the candidate would take
    among the customer's nearest sites.
    """

    x: float
    y: float
    total: float
    customers: dict[int, float]

    @property
    def customer_count(self) -> int:
        """Number of customers attracted with positive probability — the
        size of the candidate's BRkNN set (weighted variants aside)."""
        return len(self.customers)


class InfluenceEvaluator:
    """Scores candidate locations against a fixed problem instance.

    Builds the NLC set once; each evaluation is then a vectorised
    point-in-disks test.  Use this to compare a shortlist of candidate
    sites or to audit a solver's reported optimum.

    >>> problem = MaxBRkNNProblem([(0, 0)], [(3, 0)], k=1)
    >>> InfluenceEvaluator(problem).influence_at(0.5, 0.0).total
    1.0
    """

    def __init__(self, problem: MaxBRkNNProblem,
                 nlcs: CircleSet | None = None,
                 boundary_tol: float = 1e-9) -> None:
        self.problem = problem
        self.nlcs = nlcs if nlcs is not None else build_nlcs(problem)
        self.boundary_tol = boundary_tol

    def total_score(self, x: float, y: float) -> float:
        """``total_score`` of a location (Definition 4)."""
        return self.nlcs.cover_score_at(float(x), float(y),
                                        tol=self.boundary_tol)

    def influence_at(self, x: float, y: float) -> InfluenceBreakdown:
        """Full per-customer breakdown of a location's influence."""
        x = float(x)
        y = float(y)
        mask = self.nlcs.contains_point_mask(x, y, tol=self.boundary_tol)
        owners = self.nlcs.owners[mask]
        scores = self.nlcs.scores[mask]
        customers: dict[int, float] = {}
        for owner, score in zip(owners.tolist(), scores.tolist()):
            customers[owner] = customers.get(owner, 0.0) + score
        return InfluenceBreakdown(x=x, y=y,
                                  total=float(scores.sum()),
                                  customers=customers)

    def rank_candidates(self, candidates: Any) -> list[InfluenceBreakdown]:
        """Score a batch of ``(x, y)`` candidates, best first.

        Ties are broken by candidate order, so the ranking is
        deterministic.
        """
        pts = np.asarray(candidates, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("candidates must be an (n, 2) array-like")
        out = [self.influence_at(px, py) for px, py in pts]
        out.sort(key=lambda b: -b.total)
        return out


def influence_at(problem: MaxBRkNNProblem, x: float,
                 y: float) -> InfluenceBreakdown:
    """One-shot influence query (builds NLCs; use
    :class:`InfluenceEvaluator` for repeated queries)."""
    return InfluenceEvaluator(problem).influence_at(x, y)
