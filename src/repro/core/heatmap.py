"""Influence heat maps: the Phase I tessellation as a tile grid.

MaxFirst scores every quadrant it explores — upper bound ``m̂ax`` from
the intersecting NLCs, proven lower bound ``m̂in`` from the containing
ones — and then discards everything but the argmax.  This module keeps
the whole field instead: :func:`build_heatmap` runs Phase I with the
``tessellation`` capture hook of
:meth:`repro.core.maxfirst.MaxFirst.run_phase1` and rasterises the
finished quadrants onto an ``nx`` × ``ny`` grid, producing the product
shape of "Reverse Nearest Neighbor Heat Maps" (PAPERS.md): per tile, a
*proven* influence value attained inside the tile (``lower``) and a
certified bound on every location in it (``upper``).

Determinism: the heat map always runs a **fresh, unseeded** Phase I.
Certificate seeding (``seed_covers`` / ``initial_bound``) makes the
search prune earlier and therefore tessellate more coarsely — sound for
the argmax, but it changes the captured field.  Skipping the
certificate keeps one instance's heat map a pure function of
``(nlcs, space, nx, ny)``, which is what lets the serve-path result
cache hand back cached tiles bit-identical to a fresh solve.

Painting is max-combine per tile, so overlapping capture entries (a
refinement-requeued quadrant terminates twice) are benign, and the
soundness argument is local: ``m̂in`` holds *everywhere* in its
quadrant, so any tile the quadrant touches attains it; ``m̂ax`` bounds
everything in the quadrant, and since finished quadrants tile the
space, the max over a tile's overlapping quadrants bounds every
location in the tile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.maxfirst import MaxFirst
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import span

__all__ = ["InfluenceHeatmap", "build_heatmap", "empty_heatmap",
           "paint_tessellation"]

_tiles_filled = _obs_metrics.counter("heatmap_tiles_filled")


@dataclass(frozen=True)
class InfluenceHeatmap:
    """A bracketing of the influence surface on a regular tile grid.

    ``lower[j, i]`` / ``upper[j, i]`` are the tile in column ``i``
    (from ``space.xmin``) and row ``j`` (from ``space.ymin``), both
    ``(ny, nx)`` float64 arrays with ``lower <= upper`` everywhere.
    """

    space: Rect
    nx: int
    ny: int
    lower: np.ndarray
    upper: np.ndarray

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the gridded space."""
        s = self.space
        return (s.xmin, s.ymin, s.xmax, s.ymax)


def empty_heatmap(space: Rect, nx: int, ny: int) -> InfluenceHeatmap:
    """The all-zero heat map (degenerate instances: no NLCs, no score)."""
    return InfluenceHeatmap(
        space=space, nx=nx, ny=ny,
        lower=np.zeros((ny, nx), dtype=np.float64),
        upper=np.zeros((ny, nx), dtype=np.float64))


def paint_tessellation(space: Rect, nx: int, ny: int,
                       tessellation: Sequence[tuple[Rect, float, float]]
                       ) -> InfluenceHeatmap:
    """Rasterise captured ``(rect, m̂in, m̂ax)`` quadrants onto a grid.

    Max-combine per tile; entries outside ``space`` clip away.  Counts
    every painted tile-cell in ``heatmap_tiles_filled`` (deterministic:
    the tessellation is a pure function of the instance).
    """
    lower = np.zeros((ny, nx), dtype=np.float64)
    upper = np.zeros((ny, nx), dtype=np.float64)
    cell_w = space.width / nx
    cell_h = space.height / ny
    filled = 0
    for rect, min_hat, max_hat in tessellation:
        i0 = _clip(math.floor((rect.xmin - space.xmin) / cell_w), nx)
        i1 = _clip(math.ceil((rect.xmax - space.xmin) / cell_w), nx)
        j0 = _clip(math.floor((rect.ymin - space.ymin) / cell_h), ny)
        j1 = _clip(math.ceil((rect.ymax - space.ymin) / cell_h), ny)
        if i1 <= i0 or j1 <= j0:
            continue
        window_l = lower[j0:j1, i0:i1]
        np.maximum(window_l, min_hat, out=window_l)
        window_u = upper[j0:j1, i0:i1]
        np.maximum(window_u, max_hat, out=window_u)
        filled += (i1 - i0) * (j1 - j0)
    _tiles_filled.add(filled)
    return InfluenceHeatmap(space=space, nx=nx, ny=ny,
                            lower=lower, upper=upper)


def build_heatmap(nlcs: CircleSet, space: Rect, nx: int = 32,
                  ny: int = 32, *,
                  solver: MaxFirst | None = None) -> InfluenceHeatmap:
    """Run a fresh Phase I over ``nlcs`` and rasterise its tessellation.

    Deliberately ignores any cross-request certificate (see module
    docstring); ``solver`` exists so callers can pin non-default solver
    knobs (backend, resolution) — it must be an unseeded ``top_t == 1``
    configuration.
    """
    if nx < 1 or ny < 1:
        raise ValueError(f"heatmap grid must be >= 1x1, got {nx}x{ny}")
    if len(nlcs) == 0:
        return empty_heatmap(space, nx, ny)
    if solver is None:
        solver = MaxFirst()
    sink: list[tuple[Rect, float, float]] = []
    with span("heatmap/phase1", nlcs=len(nlcs), nx=nx, ny=ny):
        solver.run_phase1(nlcs, space, tessellation=sink)
    with span("heatmap/paint", quads=len(sink)):
        return paint_tessellation(space, nx, ny, sink)


def _clip(index: int, edge: int) -> int:
    return 0 if index < 0 else (edge if index > edge else index)
