"""Independent verification of solver results.

``verify_result`` audits a :class:`~repro.core.result.MaxBRkNNResult`
against its own NLC set using only the scoring primitives (no solver
machinery): every region's representative must attain the claimed score,
region interiors must be score-uniform, and no sampled location may beat
the claimed optimum.  It is the library's answer to "how do I know the
solver is right on *my* data?" — and the test-suite's cross-check oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import MaxBRkNNResult
from repro.core.scoring import neighborhood_score
from repro.geometry.tolerance import near_zero


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a result audit.

    ``ok`` summarises; ``issues`` lists human-readable findings (empty
    when the result verifies).  ``sampled_best`` is the best influence
    seen among the random probes — a lower-bound witness.
    """

    ok: bool
    issues: tuple[str, ...]
    regions_checked: int
    samples_checked: int
    sampled_best: float

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(
                "result failed verification:\n  " + "\n  ".join(self.issues))


def verify_result(result: MaxBRkNNResult, samples: int = 2_000,
                  region_probes: int = 32, seed: int = 0,
                  rel_tol: float = 1e-6) -> VerificationReport:
    """Audit a solve: regions attain the score, nothing sampled beats it.

    Parameters
    ----------
    samples:
        Random locations across the search space checked against the
        claimed optimum (a probabilistic no-better-point check).
    region_probes:
        Random interior probes per region checking score uniformity.
    """
    issues: list[str] = []
    nlcs = result.nlcs
    space = result.space
    tol = 1e-9 * max(space.width, space.height, 1.0)
    score_tol = rel_tol * max(1.0, abs(result.score))
    rng = np.random.default_rng(seed)

    # 1. Every region's representative point attains the claimed score.
    for i, region in enumerate(result.regions):
        p = region.representative_point()
        value = neighborhood_score(nlcs, p.x, p.y, tol=tol)
        if value < region.score - score_tol:
            issues.append(
                f"region {i}: representative point ({p.x:.6g}, {p.y:.6g}) "
                f"attains {value:.6g} < claimed {region.score:.6g}")

    # 2. Region interiors are score-uniform at the claimed level.
    for i, region in enumerate(result.regions):
        if region.shape is None:
            continue
        box = region.shape.bounding_box()
        if box.area == 0:
            continue
        hits = 0
        for _ in range(region_probes * 4):
            if hits >= region_probes:
                break
            x = box.xmin + rng.random() * box.width
            y = box.ymin + rng.random() * box.height
            if not region.contains_point(x, y, tol=-tol):
                continue
            hits += 1
            value = neighborhood_score(nlcs, x, y, tol=tol)
            if value < region.score - score_tol:
                issues.append(
                    f"region {i}: interior point ({x:.6g}, {y:.6g}) "
                    f"scores {value:.6g} < claimed {region.score:.6g}")
                break

    # 3. No sampled location beats the optimum.
    xs = space.xmin + rng.random(samples) * space.width
    ys = space.ymin + rng.random(samples) * space.height
    all_idx = np.arange(len(nlcs), dtype=np.int64)
    points = np.column_stack((xs, ys))
    # Closed-disk scores upper-bound the neighbourhood score, so only
    # suspicious points need the exact evaluation.
    upper = nlcs.cover_scores_at_points(points, all_idx, tol=tol)
    sampled_best = 0.0
    for j in np.flatnonzero(upper > result.score - score_tol):
        value = neighborhood_score(nlcs, float(xs[j]), float(ys[j]),
                                   tol=tol)
        sampled_best = max(sampled_best, value)
        if value > result.score + score_tol:
            issues.append(
                f"sampled location ({xs[j]:.6g}, {ys[j]:.6g}) scores "
                f"{value:.6g} > claimed optimum {result.score:.6g}")
    # "No suspicious sample was evaluated" (or every evaluation rounded
    # to nothing): report the cheap upper bound as the witness instead of
    # a misleading hard zero.  near_zero, not ``== 0.0``: neighborhood
    # scores are sums of weighted probabilities, so a path that *was*
    # evaluated can legitimately come back as accumulated rounding dust.
    if near_zero(sampled_best) and samples:
        sampled_best = float(
            min(upper.max(), result.score))

    return VerificationReport(
        ok=not issues, issues=tuple(issues),
        regions_checked=len(result.regions),
        samples_checked=samples, sampled_best=sampled_best)
