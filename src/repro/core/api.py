"""Top-level convenience API.

The one-call entry points a downstream user reaches for first; the full
control surface lives on :class:`~repro.core.maxfirst.MaxFirst` and
:class:`~repro.core.problem.MaxBRkNNProblem`.
"""

from __future__ import annotations

from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.core.result import MaxBRkNNResult
from repro.geometry.point import Point


def find_optimal_regions(customers, sites, k: int = 1, weights=None,
                         probability=None, **solver_options
                         ) -> MaxBRkNNResult:
    """Solve a (generalized) MaxBRkNN instance with MaxFirst.

    Parameters
    ----------
    customers, sites:
        ``(n, 2)`` / ``(m, 2)`` array-likes of planar locations.
    k:
        Customers consider their ``k`` nearest service sites.
    weights:
        Optional per-customer importance.
    probability:
        ``None`` (classic MaxBRkNN: equal probabilities), a
        :class:`~repro.core.probability.ProbabilityModel`, a probability
        sequence such as ``[0.8, 0.2]``, or one model per customer.
    solver_options:
        Forwarded to :class:`~repro.core.maxfirst.MaxFirst`
        (``m_threshold``, ``backend``, ``top_t``, ...).

    >>> result = find_optimal_regions([(0, 0), (1, 0)], [(4, 4), (-4, 4)])
    >>> round(result.score, 6)
    2.0

    Both customers lie far from either site, so a new site between them
    wins both.
    """
    problem = MaxBRkNNProblem(customers=customers, sites=sites, k=k,
                              weights=weights, probability=probability)
    return MaxFirst(**solver_options).solve(problem)


def find_optimal_location(customers, sites, k: int = 1, weights=None,
                          probability=None, **solver_options) -> Point:
    """Like :func:`find_optimal_regions` but returns one concrete optimal
    location (a representative point of the best region)."""
    result = find_optimal_regions(customers, sites, k=k, weights=weights,
                                  probability=probability, **solver_options)
    return result.optimal_location()
