"""Top-level convenience API.

The one-call entry points a downstream user reaches for first; the full
control surface lives on the solver classes (resolved by name through
:mod:`repro.engine.registry`) and :class:`~repro.core.problem.MaxBRkNNProblem`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.probability import ProbabilityLike
from repro.core.problem import MaxBRkNNProblem
from repro.core.result import MaxBRkNNResult
from repro.geometry.point import Point

if TYPE_CHECKING:  # engine imports stay lazy at runtime (circularity)
    from repro.engine.report import RunReport


def find_optimal_regions(customers: Any, sites: Any, k: int = 1,
                         weights: Any = None,
                         probability: ProbabilityLike = None,
                         solver: str = "maxfirst",
                         **solver_options: Any) -> MaxBRkNNResult:
    """Solve a (generalized) MaxBRkNN instance.

    Parameters
    ----------
    customers, sites:
        ``(n, 2)`` / ``(m, 2)`` array-likes of planar locations.
    k:
        Customers consider their ``k`` nearest service sites.
    weights:
        Optional per-customer importance.
    probability:
        ``None`` (classic MaxBRkNN: equal probabilities), a
        :class:`~repro.core.probability.ProbabilityModel`, a probability
        sequence such as ``[0.8, 0.2]``, or one model per customer.
    solver:
        Registry name of the solver to run — ``"maxfirst"`` (default),
        ``"maxoverlap"``, ``"maxfirst-sharded"``, ``"gridsearch"`` or
        ``"reference"`` (see :func:`repro.engine.solver_names`).
    solver_options:
        Forwarded to the solver's constructor (``m_threshold``,
        ``backend``, ``top_t``, ... for MaxFirst).

    >>> result = find_optimal_regions([(0, 0), (1, 0)], [(4, 4), (-4, 4)])
    >>> round(result.score, 6)
    2.0

    Both customers lie far from either site, so a new site between them
    wins both.
    """
    from repro.engine.registry import create_solver

    problem = MaxBRkNNProblem(customers=customers, sites=sites, k=k,
                              weights=weights, probability=probability)
    return create_solver(solver, **solver_options).solve(problem)


def find_optimal_location(customers: Any, sites: Any, k: int = 1,
                          weights: Any = None,
                          probability: ProbabilityLike = None,
                          solver: str = "maxfirst",
                          **solver_options: Any) -> Point:
    """Like :func:`find_optimal_regions` but returns one concrete optimal
    location (a representative point of the best region)."""
    result = find_optimal_regions(customers, sites, k=k, weights=weights,
                                  probability=probability, solver=solver,
                                  **solver_options)
    return result.optimal_location()


def solve_with_report(
        customers: Any, sites: Any, k: int = 1, weights: Any = None,
        probability: ProbabilityLike = None, solver: str = "maxfirst",
        **solver_options: Any) -> tuple[MaxBRkNNResult, RunReport]:
    """Like :func:`find_optimal_regions` but through the staged engine
    pipeline: returns ``(result, report)`` where ``report`` is the
    :class:`~repro.engine.report.RunReport` with per-stage timings and
    the solver's work counters."""
    from repro.engine.registry import run_pipeline

    problem = MaxBRkNNProblem(customers=customers, sites=sites, k=k,
                              weights=weights, probability=probability)
    return run_pipeline(solver, problem, **solver_options)
