"""Core MaxBRkNN machinery: problem model, NLCs, MaxFirst, influence.

Import the public names from :mod:`repro` directly; this package holds the
implementation modules:

* :mod:`~repro.core.problem` — instance specification and validation.
* :mod:`~repro.core.probability` — probability models (Section III).
* :mod:`~repro.core.nlc` — NLC construction (pre-processing).
* :mod:`~repro.core.bounds` — quadrant classification backends.
* :mod:`~repro.core.maxfirst` — Algorithm 1 (Phase I) and the solver.
* :mod:`~repro.core.region` — Algorithm 2 (Phase II).
* :mod:`~repro.core.influence` — influence queries over an instance.
* :mod:`~repro.core.api` — one-call convenience entry points.
"""

from repro.core.api import (find_optimal_location,
                            find_optimal_regions, solve_with_report)
from repro.core.influence import (InfluenceBreakdown, InfluenceEvaluator,
                                  influence_at)
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs, knn_distances, nlc_space
from repro.core.probability import ProbabilityModel
from repro.core.problem import MaxBRkNNProblem
from repro.core.queries import (InfluenceSet, NewSiteImpact, brknn_of_site,
                                impact_of_new_site, knn_sites,
                                site_influence)
from repro.core.quadrant import MaxFirstStats, Quadrant
from repro.core.region import OptimalRegion, compute_optimal_region
from repro.core.result import MaxBRkNNResult
from repro.core.verify import VerificationReport, verify_result

__all__ = [
    "InfluenceBreakdown",
    "InfluenceEvaluator",
    "InfluenceSet",
    "NewSiteImpact",
    "MaxBRkNNProblem",
    "MaxBRkNNResult",
    "MaxFirst",
    "MaxFirstStats",
    "OptimalRegion",
    "ProbabilityModel",
    "Quadrant",
    "VerificationReport",
    "brknn_of_site",
    "build_nlcs",
    "compute_optimal_region",
    "find_optimal_location",
    "find_optimal_regions",
    "solve_with_report",
    "impact_of_new_site",
    "influence_at",
    "knn_distances",
    "knn_sites",
    "nlc_space",
    "site_influence",
    "verify_result",
]
