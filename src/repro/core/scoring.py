"""Region-semantics scoring: the value a *neighbourhood* can attain.

MaxBRkNN (following Wong et al.'s *maximal consistent region*) asks for
full-dimensional regions: the optimum is the essential supremum of
``total_score``, not its pointwise supremum.  The two differ exactly at
points where NLC circumferences meet — and such points are pervasive, not
exotic: every customer's ``k``-th NLC passes exactly through its ``k``-th
nearest service site, so every site is a common point of many circles.  A
new site placed exactly there would only *tie* the incumbent; the paper's
regions never collapse to such points.

:func:`neighborhood_score` computes, exactly, the ess-sup of
``total_score`` in an infinitesimal neighbourhood of a point:

* disks containing the point strictly contribute unconditionally;
* a circle passing *through* the point contributes on an open half-circle
  of approach directions (its interior looks locally like a half-plane);
* the answer is the base score plus the best directional sum, found by a
  sweep over the half-circle interval endpoints.

MaxOverlap's step (d) and the brute-force reference solver both evaluate
candidate points with this function, which makes them agree with MaxFirst
(whose quadrant predicates encode the same semantics — see
:meth:`repro.index.circleset.CircleSet.intersects_rect_mask`).
"""

from __future__ import annotations

import numpy as np

from repro.index.circleset import CircleSet


def neighborhood_score(nlcs: CircleSet, x: float, y: float,
                       tol: float,
                       candidates: np.ndarray | None = None) -> float:
    """Essential supremum of ``total_score`` near ``(x, y)``.

    ``tol`` classifies a disk whose circumference is within ``tol`` of the
    point as passing *through* it (floating point stands in for the exact
    incidences of the problem construction).  ``candidates`` restricts the
    disks tested (they must include every disk whose closure contains the
    point).
    """
    if candidates is None:
        cx, cy, r, scores = nlcs.cx, nlcs.cy, nlcs.r, nlcs.scores
    else:
        cx = nlcs.cx[candidates]
        cy = nlcs.cy[candidates]
        r = nlcs.r[candidates]
        scores = nlcs.scores[candidates]

    dx = cx - x
    dy = cy - y
    d = np.hypot(dx, dy)
    strict_inside = d < r - tol
    base = float(scores[strict_inside].sum())

    # A zero-radius disk has empty interior: it can never cover a
    # neighbourhood, so it contributes nothing under region semantics.
    through = (np.abs(d - r) <= tol) & (r > tol)
    t = int(through.sum())
    if t == 0:
        return base
    if t == 1:
        return base + float(scores[through].sum())

    phi = np.arctan2(dy[through], dx[through])  # direction to each centre
    weights = scores[through]
    margins = _window_margins(r[through], tol)
    return base + _best_halfplane_sum(phi, weights, margins)


def neighborhood_cover(nlcs: CircleSet, x: float, y: float,
                       tol: float,
                       candidates: np.ndarray | None = None
                       ) -> tuple[float, np.ndarray]:
    """Best local value *and* the disks realising it.

    Returns ``(value, cover)`` where ``cover`` indexes the disks (in the
    full NLC set) whose intersection is the optimal region touching
    ``(x, y)``: the disks containing the point strictly, plus the
    through-circles covering the best approach direction.  The intersection
    of exactly these closed disks is the maximal consistent region through
    the winning wedge (every interior point of the intersection attains
    ``value``, and each bounding disk carries positive score, so stepping
    outside any of them loses score).
    """
    if candidates is None:
        candidates = np.arange(len(nlcs), dtype=np.int64)
    else:
        candidates = np.asarray(candidates, dtype=np.int64)
    cx = nlcs.cx[candidates]
    cy = nlcs.cy[candidates]
    r = nlcs.r[candidates]
    scores = nlcs.scores[candidates]

    dx = cx - x
    dy = cy - y
    d = np.hypot(dx, dy)
    strict_inside = d < r - tol
    base = float(scores[strict_inside].sum())
    base_cover = candidates[strict_inside]

    through = (np.abs(d - r) <= tol) & (r > tol)
    t = int(through.sum())
    if t == 0:
        return base, base_cover
    phi = np.arctan2(dy[through], dx[through])
    weights = scores[through]
    through_idx = candidates[through]
    if t == 1:
        return (base + float(weights.sum()),
                np.concatenate((base_cover, through_idx)))

    margins = _window_margins(r[through], tol)
    best_sum, direction = _best_halfplane_direction(phi, weights, margins)
    covered = np.cos(direction - phi) > np.sin(margins)
    cover = np.concatenate((base_cover, through_idx[covered]))
    return base + best_sum, cover


def pointwise_score(nlcs: CircleSet, x: float, y: float,
                    tol: float = 0.0,
                    candidates: np.ndarray | None = None) -> float:
    """Classic closed-disk ``total_score`` at a point (Definition 4).

    This is the *pointwise* value; it exceeds :func:`neighborhood_score`
    exactly at circle-coincidence points.  Kept public because it is the
    natural upper bound used to prioritise exact evaluations.
    """
    return nlcs.cover_score_at(x, y, candidates=candidates, tol=tol)


def _window_margins(radii: np.ndarray, tol: float) -> np.ndarray:
    """Angular shrink of each through-circle's direction window.

    A wedge of angular width ``theta`` between two circles of radius
    ``r`` has thickness ``~ r * theta^2 / 8``: wedges narrower than
    ``sqrt(tol / r)``-scale cannot contain a feature above the geometric
    resolution ``tol``, so they are not full-dimensional regions.
    Shrinking each half-circle window by ``delta_i = sqrt(2 tol / r_i)``
    suppresses them — in particular the float-level phantom lenses
    between *exactly tangent* NLCs (whose true common region is a single
    point) that would otherwise let tangent disks stack.
    """
    with np.errstate(divide="ignore"):
        margins = np.sqrt(2.0 * tol / np.maximum(radii, tol))
    return np.minimum(margins, np.pi / 4.0)


def _best_halfplane_sum(phi: np.ndarray, weights: np.ndarray,
                        margins: np.ndarray) -> float:
    """Max over directions ``u`` of the summed weight of windows
    containing ``u``."""
    best, _ = _best_halfplane_direction(phi, weights, margins)
    return best


def _best_halfplane_direction(phi: np.ndarray, weights: np.ndarray,
                              margins: np.ndarray
                              ) -> tuple[float, float]:
    """Best directional sum and a direction attaining it.

    Each through-circle covers the open angular window within
    ``pi/2 - margin_i`` of ``phi_i`` (see :func:`_window_margins`).  The
    maximum over ``u`` is attained away from interval endpoints, so
    evaluating the midpoints between consecutive endpoint angles is
    exact.
    """
    half_widths = np.pi / 2.0 - margins
    endpoints = np.concatenate((phi - half_widths, phi + half_widths))
    endpoints = np.mod(endpoints, 2.0 * np.pi)
    endpoints.sort()
    # Midpoints of consecutive endpoint gaps (wrapping around).
    nxt = np.roll(endpoints, -1).copy()
    nxt[-1] += 2.0 * np.pi
    mids = (endpoints + nxt) / 2.0
    # coverage[j, i] == True when direction mids[j] is inside window i:
    # |u - phi_i| < pi/2 - margin_i  <=>  cos(u - phi_i) > sin(margin_i).
    delta = np.cos(mids[:, None] - phi[None, :])
    covered = delta > np.maximum(np.sin(margins), 1e-12)[None, :]
    sums = covered @ weights
    j = int(sums.argmax())
    return float(sums[j]), float(mids[j])
