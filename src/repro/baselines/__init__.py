"""Baseline and reference solvers.

* :class:`~repro.baselines.maxoverlap.MaxOverlap` — the state-of-the-art
  comparator from the paper (Wong et al., PVLDB 2009), reimplemented from
  the pipeline description in Section II: region-to-point transformation
  over NLC intersection points.
* :mod:`~repro.baselines.reference` — an exact but brute-force solver used
  as ground truth by the test suite.
* :mod:`~repro.baselines.gridsearch` — dense-sampling approximation, a
  sanity baseline with a tunable accuracy/cost dial.
"""

from repro.baselines.gridsearch import GridSearchResult, grid_search
from repro.baselines.maxoverlap import (MaxOverlap, MaxOverlapResult,
                                        MaxOverlapStats)
from repro.baselines.reference import ReferenceSolution, reference_solve

__all__ = [
    "GridSearchResult",
    "MaxOverlap",
    "MaxOverlapResult",
    "MaxOverlapStats",
    "ReferenceSolution",
    "grid_search",
    "reference_solve",
]
