"""Exact brute-force reference solver (test-suite ground truth).

Every optimal region is an intersection of closed disks; its boundary
either carries a vertex (a circumference crossing of two NLCs) or the
region is a single full disk.  Hence the optimum — under region semantics,
the essential supremum of ``total_score`` — is witnessed at one of these
candidate points, evaluated with the exact local-sector rule of
:func:`repro.core.scoring.neighborhood_score`:

* every circumference intersection point of every pair of NLCs, and
* every NLC centre.

Scoring all candidates against all disks is ``O(n^3)`` in the worst case —
useless at benchmark scale, bullet-proof at test scale, which is exactly
its job: MaxFirst and MaxOverlap results are asserted against it.  The
closed-disk pointwise score (cheap, vectorised) upper-bounds the
neighbourhood score, so candidates are refined best-first with early exit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.core.region import OptimalRegion
from repro.core.result import MaxBRkNNResult
from repro.core.scoring import neighborhood_score
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


@dataclass(frozen=True)
class ReferenceSolution:
    """Ground-truth optimum.

    ``locations`` holds every candidate point achieving the optimum (one
    per optimal region at least — an optimal region's boundary vertices,
    or a defining centre, are always candidates).
    """

    score: float
    locations: np.ndarray  # (n, 2)
    candidate_count: int

    def distinct_cover_count(self, nlcs: CircleSet,
                             tol: float = 1e-9) -> int:
        """Number of distinct covering-disk sets among the optimal
        locations — the number of distinct optimal regions witnessed."""
        from repro.core.scoring import neighborhood_cover

        covers = set()
        for x, y in self.locations:
            _, cover = neighborhood_cover(nlcs, float(x), float(y), tol=tol)
            covers.add(tuple(sorted(int(i) for i in cover)))
        return len(covers)


def reference_solve(problem: MaxBRkNNProblem,
                    tol: float | None = None) -> ReferenceSolution:
    """Solve an instance exactly by exhaustive candidate enumeration."""
    nlcs = build_nlcs(problem)
    return reference_solve_nlcs(nlcs, tol=tol)


def reference_solve_nlcs(nlcs: CircleSet,
                         tol: float | None = None) -> ReferenceSolution:
    """Exhaustive solve over an explicit NLC set."""
    if len(nlcs) == 0:
        raise ValueError("cannot solve over an empty NLC set")
    if tol is None:
        box = nlcs.bounding_box()
        tol = 1e-9 * max(box.width, box.height, 1.0)

    candidates = _candidate_points(nlcs)
    upper = _score_points(candidates, nlcs, tol)

    # The closed-disk pointwise score upper-bounds the neighbourhood score,
    # so refining candidates in descending upper-bound order allows an
    # early exit once no remaining upper bound can beat the best exact
    # value found.
    order = np.argsort(-upper, kind="stable")
    best = -np.inf
    tie = 0.0
    exact: dict[int, float] = {}
    for idx in order:
        idx = int(idx)
        if upper[idx] < best - tie:
            break
        value = neighborhood_score(nlcs, float(candidates[idx, 0]),
                                   float(candidates[idx, 1]), tol=tol)
        exact[idx] = value
        if value > best:
            best = value
            tie = 1e-9 * max(1.0, abs(best))
    winners = np.array(
        [candidates[i] for i, v in exact.items() if v >= best - tie],
        dtype=np.float64)
    return ReferenceSolution(score=float(best), locations=winners,
                             candidate_count=int(candidates.shape[0]))


class Reference:
    """Class-shaped brute-force solver: the registry's uniform surface.

    Wraps :func:`reference_solve` behind ``solve(problem) ->
    MaxBRkNNResult``.  Each optimal candidate location becomes one
    degenerate point "region" (``shape=None``); the score is exact, which
    is what the cross-solver agreement tests lean on.  O(n^3) worst case —
    test scale only.
    """

    def __init__(self, tol: float | None = None) -> None:
        self.tol = tol

    def solve(self, problem: MaxBRkNNProblem) -> MaxBRkNNResult:
        t0 = time.perf_counter()
        nlcs = build_nlcs(problem)
        t1 = time.perf_counter()
        if len(nlcs) == 0:
            return MaxBRkNNResult(score=0.0, regions=(), nlcs=nlcs,
                                  space=problem.data_bounds(),
                                  timings={"nlc": t1 - t0})
        result = self.solve_nlcs(nlcs)
        result.timings["nlc"] = t1 - t0
        return result

    def solve_nlcs(self, nlcs: CircleSet,
                   space: Rect | None = None) -> MaxBRkNNResult:
        from repro.core.nlc import nlc_space

        if space is None:
            space = nlc_space(nlcs)
        t0 = time.perf_counter()
        found = reference_solve_nlcs(nlcs, tol=self.tol)
        t1 = time.perf_counter()
        regions = tuple(
            OptimalRegion(score=found.score, shape=None,
                          seed_quadrant=Rect(float(x), float(y),
                                             float(x), float(y)),
                          cover=(), clipping_count=0)
            for x, y in found.locations)
        return MaxBRkNNResult(score=found.score, regions=regions,
                              nlcs=nlcs, space=space,
                              timings={"search": t1 - t0})


def _candidate_points(nlcs: CircleSet) -> np.ndarray:
    cx, cy, r = nlcs.cx, nlcs.cy, nlcs.r
    n = len(nlcs)
    i_idx, j_idx = np.triu_indices(n, k=1)
    dx = cx[j_idx] - cx[i_idx]
    dy = cy[j_idx] - cy[i_idx]
    d = np.hypot(dx, dy)
    ri = r[i_idx]
    rj = r[j_idx]
    with np.errstate(divide="ignore", invalid="ignore"):
        ell = (d * d + ri * ri - rj * rj) / (2.0 * d)
        h2 = ri * ri - ell * ell
    valid = (d > 0.0) & (h2 >= 0.0) & (d <= ri + rj) & (d >= np.abs(ri - rj))
    points = [np.column_stack((cx, cy))]
    if valid.any():
        ell_v = ell[valid]
        h = np.sqrt(np.maximum(h2[valid], 0.0))
        ux = dx[valid] / d[valid]
        uy = dy[valid] / d[valid]
        px = cx[i_idx[valid]] + ell_v * ux
        py = cy[i_idx[valid]] + ell_v * uy
        points.append(np.column_stack((px - h * uy, py + h * ux)))
        points.append(np.column_stack((px + h * uy, py - h * ux)))
    return np.vstack(points)


def _score_points(points: np.ndarray, nlcs: CircleSet,
                  tol: float) -> np.ndarray:
    """Total score at each point, chunked to bound the distance matrix."""
    out = np.empty(points.shape[0], dtype=np.float64)
    all_circles = np.arange(len(nlcs), dtype=np.int64)
    chunk = max(1, 4_000_000 // max(len(nlcs), 1))
    for start in range(0, points.shape[0], chunk):
        batch = points[start:start + chunk]
        out[start:start + chunk] = nlcs.cover_scores_at_points(
            batch, all_circles, tol=tol)
    return out
