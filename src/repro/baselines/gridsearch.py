"""Dense-sampling baseline: approximate MaxBRkNN by scoring a lattice.

Not from the paper — included as an independent sanity check with an
obvious correctness argument and a tunable accuracy/cost dial.  The lattice
never overestimates the optimum (every sample is a real location), so
``grid_search(problem, n).score <= exact_score`` always holds, and the gap
closes as the lattice refines — properties the test suite exploits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.region import OptimalRegion
from repro.core.result import MaxBRkNNResult
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


@dataclass(frozen=True)
class GridSearchResult:
    """Best lattice sample found.

    ``score`` is a *lower bound* on the true optimum (it is attained at
    ``location``); ``resolution`` is the lattice pitch.
    """

    score: float
    location: tuple[float, float]
    resolution: float
    samples: int


def grid_search(problem: MaxBRkNNProblem,
                samples_per_axis: int = 128,
                tol: float | None = None) -> GridSearchResult:
    """Score a ``samples_per_axis``-squared lattice over the NLC space."""
    nlcs = build_nlcs(problem)
    return grid_search_nlcs(nlcs, samples_per_axis=samples_per_axis,
                            tol=tol)


def grid_search_nlcs(nlcs: CircleSet, samples_per_axis: int = 128,
                     tol: float | None = None) -> GridSearchResult:
    """Lattice search over an explicit NLC set."""
    if samples_per_axis < 2:
        raise ValueError("samples_per_axis must be at least 2")
    space = nlc_space(nlcs)
    if tol is None:
        tol = 1e-9 * max(space.width, space.height, 1.0)

    xs = np.linspace(space.xmin, space.xmax, samples_per_axis)
    ys = np.linspace(space.ymin, space.ymax, samples_per_axis)
    all_circles = np.arange(len(nlcs), dtype=np.int64)

    best_score = -np.inf
    best_xy = (float(xs[0]), float(ys[0]))
    # Row-by-row keeps the distance matrix at (samples, n_circles).
    for y in ys:
        row = np.column_stack((xs, np.full_like(xs, y)))
        scores = nlcs.cover_scores_at_points(row, all_circles, tol=tol)
        i = int(scores.argmax())
        if scores[i] > best_score:
            best_score = float(scores[i])
            best_xy = (float(xs[i]), float(y))

    pitch = max((space.xmax - space.xmin) / (samples_per_axis - 1),
                (space.ymax - space.ymin) / (samples_per_axis - 1))
    return GridSearchResult(score=best_score, location=best_xy,
                            resolution=pitch,
                            samples=samples_per_axis * samples_per_axis)


class GridSearch:
    """Class-shaped lattice solver: the registry's uniform surface.

    Wraps :func:`grid_search` behind the same ``solve(problem) ->
    MaxBRkNNResult`` contract the exact solvers expose, so the engine
    layer can schedule and instrument it like any other solver.  The
    single returned "region" is the degenerate best lattice sample (a
    point; ``shape=None``), whose representative point is the sample
    itself — the score is a lower bound on the true optimum.
    """

    def __init__(self, samples_per_axis: int = 128,
                 tol: float | None = None) -> None:
        if samples_per_axis < 2:
            raise ValueError("samples_per_axis must be at least 2")
        self.samples_per_axis = samples_per_axis
        self.tol = tol

    def solve(self, problem: MaxBRkNNProblem) -> MaxBRkNNResult:
        t0 = time.perf_counter()
        nlcs = build_nlcs(problem)
        t1 = time.perf_counter()
        if len(nlcs) == 0:
            return MaxBRkNNResult(score=0.0, regions=(), nlcs=nlcs,
                                  space=problem.data_bounds(),
                                  timings={"nlc": t1 - t0})
        result = self.solve_nlcs(nlcs)
        result.timings["nlc"] = t1 - t0
        return result

    def solve_nlcs(self, nlcs: CircleSet,
                   space: Rect | None = None) -> MaxBRkNNResult:
        if space is None:
            space = nlc_space(nlcs)
        t0 = time.perf_counter()
        found = grid_search_nlcs(nlcs,
                                 samples_per_axis=self.samples_per_axis,
                                 tol=self.tol)
        t1 = time.perf_counter()
        x, y = found.location
        region = OptimalRegion(score=found.score, shape=None,
                               seed_quadrant=Rect(x, y, x, y),
                               cover=(), clipping_count=0)
        return MaxBRkNNResult(score=found.score, regions=(region,),
                              nlcs=nlcs, space=space,
                              timings={"search": t1 - t0})
