"""MaxOverlap (Wong et al., PVLDB 2009) — the paper's comparator.

Reimplemented from the pipeline quoted in Section II of the MaxFirst
paper:

  (a) index the customer objects and service sites;
  (b) compute the NLC of each object and index the NLCs;
  (c) compute the intersection points of each pair of NLCs;
  (d) for each intersection point, determine the NLCs that cover it;
  (e) return the point covered by the largest (score) mass and the overlap
      of its covering NLCs as the optimal region.

The asymptotic bottleneck is step (c): the number of NLC pairs — and hence
intersection points — grows quadratically with ``|O|`` and rapidly with
``k`` (bigger circles overlap more).  That is precisely the behaviour
Figures 10-12 of the paper measure, so this implementation keeps the
algorithmic shape while batching the arithmetic with numpy: the Python
constant factor shrinks, the asymptotics (what the figures compare) are
untouched.

Two deliberate robustness extensions over the original:

* isolated NLCs (no intersection with any other NLC) contribute their
  centre as a candidate point, so instances violating MaxOverlap's
  every-NLC-intersects-another assumption still solve correctly;
* per-NLC *scores* are accumulated instead of counts, so weighted objects
  and non-uniform probability models work too (the original assumes equal
  probabilities — comparisons against the paper's MaxOverlap only use the
  uniform model, as the paper itself does).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.region import compute_optimal_region
from repro.core.result import MaxBRkNNResult
from repro.core.scoring import neighborhood_cover, neighborhood_score
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


@dataclass(frozen=True)
class MaxOverlapStats:
    """Work counters for one MaxOverlap run.

    ``candidate_pairs`` are bounding-box-level collisions tested exactly;
    ``intersecting_pairs`` of those truly intersect; each contributes up to
    two ``intersection_points`` (step (c)).  ``coverage_tests`` counts
    point-in-disk evaluations performed in step (d).
    """

    nlc_count: int
    candidate_pairs: int
    intersecting_pairs: int
    intersection_points: int
    coverage_tests: int
    # Distinct candidate locations after coincident points (piles of
    # pairwise intersections at shared sites) are merged.
    distinct_candidates: int = 0


@dataclass(frozen=True)
class MaxOverlapResult(MaxBRkNNResult):
    """MaxOverlap's result: the shared result surface plus its counters."""

    overlap_stats: MaxOverlapStats | None = None


@dataclass
class _SearchOutcome:
    """Output of the search stage: the exact best score, the candidate
    indices attaining it, and the work counters (consumed by the region
    stage and the engine pipeline's instrumentation)."""

    best: float
    best_idx: list[int]
    candidates: np.ndarray
    stats: MaxOverlapStats
    # Time spent on pair enumeration/dedup inside search (lets solve_nlcs
    # keep its historical pairs/coverage timing split).
    pairs_seconds: float = 0.0


class MaxOverlap:
    """The MaxOverlap solver.

    Parameters
    ----------
    boundary_tol:
        Slack for step (d)'s closed-disk coverage test: an intersection
        point lies exactly on two circumferences, where exact arithmetic
        would count both disks; the tolerance restores that under floats.
    grid_target_per_cell:
        Sizing knob for the uniform bucket grid used to enumerate pairs.
    nlc_method / keep_zero_score_nlcs:
        Passed to :func:`repro.core.nlc.build_nlcs`.
    """

    def __init__(self, boundary_tol: float | None = None,
                 grid_target_per_cell: float = 4.0,
                 nlc_method: str = "auto",
                 keep_zero_score_nlcs: bool = False) -> None:
        self.boundary_tol = boundary_tol
        self.grid_target_per_cell = grid_target_per_cell
        self.nlc_method = nlc_method
        self.keep_zero_score_nlcs = keep_zero_score_nlcs

    def solve(self, problem: MaxBRkNNProblem) -> MaxOverlapResult:
        """Run the full MaxOverlap pipeline on a problem instance."""
        t0 = time.perf_counter()
        nlcs = build_nlcs(problem, method=self.nlc_method,
                          keep_zero_score=self.keep_zero_score_nlcs)
        t1 = time.perf_counter()
        if len(nlcs) == 0:
            # Legal degenerate instance (e.g. all weights zero).
            return MaxOverlapResult(
                score=0.0, regions=(), nlcs=nlcs,
                space=problem.data_bounds(), stats=None,
                overlap_stats=MaxOverlapStats(0, 0, 0, 0, 0, 0),
                timings={"nlc": t1 - t0})
        result = self.solve_nlcs(nlcs)
        result.timings["nlc"] = t1 - t0
        return result

    def solve_nlcs(self, nlcs: CircleSet,
                   space: Rect | None = None) -> MaxOverlapResult:
        """Solve over an explicit NLC set."""
        if len(nlcs) == 0:
            raise ValueError("cannot solve over an empty NLC set")
        if space is None:
            space = nlc_space(nlcs)
        tol = self.resolve_tol(space)

        t0 = time.perf_counter()
        grid = self.build_index(nlcs)
        t05 = time.perf_counter()
        search = self.search(nlcs, grid, tol)
        t2 = time.perf_counter()
        regions = self.build_regions(nlcs, grid, search, tol)
        t3 = time.perf_counter()

        return MaxOverlapResult(
            score=search.best, regions=tuple(regions), nlcs=nlcs,
            space=space, stats=None, overlap_stats=search.stats,
            timings={"pairs": search.pairs_seconds + (t05 - t0),
                     "coverage": (t2 - t05) - search.pairs_seconds,
                     "region": t3 - t2})

    # -- staged pieces (composed by solve_nlcs and the engine pipeline) -- #

    def resolve_tol(self, space: Rect) -> float:
        """The effective boundary tolerance for a data space."""
        if self.boundary_tol is not None:
            return self.boundary_tol
        return 1e-9 * max(space.width, space.height, 1.0)

    def build_index(self, nlcs: CircleSet) -> "_CircleGrid":
        """Stage (b): bucket the NLC bounding boxes into a uniform grid."""
        return _CircleGrid(nlcs, self.grid_target_per_cell)

    def search(self, nlcs: CircleSet, grid: "_CircleGrid",
               tol: float) -> "_SearchOutcome":
        """Stages (c)-(e): candidate points, coverage, exact best."""
        t0 = time.perf_counter()
        pairs_a, pairs_b, candidate_pairs = grid.intersecting_pairs()
        points, isolated_mask = _intersection_points(nlcs, pairs_a, pairs_b)
        # Isolated NLCs (never intersected) seed their centres as
        # candidates; NLCs that do intersect others are represented by the
        # intersection points themselves (the region-to-point argument).
        centers = np.column_stack(
            (nlcs.cx[isolated_mask], nlcs.cy[isolated_mask]))
        candidates = (np.vstack((points, centers))
                      if centers.size else points)
        if candidates.shape[0] == 0:
            # Single NLC (or all concentric): its centre is as good as any.
            candidates = np.column_stack((nlcs.cx[:1], nlcs.cy[:1]))
        # Deduplicate coincident candidates.  Every customer's k-th NLC
        # passes exactly through its k-th nearest site, so with c
        # customers per site ~c^2/2 pairwise intersection points pile up
        # AT the site — one distinct location.  Quantising at the
        # boundary tolerance collapses them; the pair/point counts (the
        # paper's asymptotic story) are recorded before deduplication.
        quantum = max(tol, 1e-300)
        keys = np.round(candidates / quantum).astype(np.int64)
        _, unique_idx = np.unique(keys, axis=0, return_index=True)
        candidates = candidates[np.sort(unique_idx)]
        pairs_seconds = time.perf_counter() - t0

        upper, coverage_tests = grid.coverage_scores(candidates, tol)
        # The closed-disk coverage sum over-counts exactly at points where
        # circumferences meet (pervasive: every NLC passes through a site).
        # Refine the top candidates with the exact region-semantics local
        # score, best-first with early exit (region semantics — see
        # repro.core.scoring).
        order = np.argsort(-upper, kind="stable")
        best = -np.inf
        score_tie = 0.0
        best_idx: list[int] = []
        for idx in order:
            idx = int(idx)
            if upper[idx] < best - score_tie:
                break
            x, y = float(candidates[idx, 0]), float(candidates[idx, 1])
            bucket = grid.point_candidates(x, y)
            value = neighborhood_score(nlcs, x, y, tol=tol,
                                       candidates=bucket)
            if value > best + score_tie:
                best = value
                score_tie = 1e-9 * max(1.0, abs(best))
                best_idx = [idx]
            elif value >= best - score_tie:
                best_idx.append(idx)

        stats = MaxOverlapStats(
            nlc_count=len(nlcs),
            candidate_pairs=candidate_pairs,
            intersecting_pairs=int(pairs_a.shape[0]),
            intersection_points=int(points.shape[0]),
            coverage_tests=coverage_tests,
            distinct_candidates=int(candidates.shape[0]),
        )
        return _SearchOutcome(best=best, best_idx=best_idx,
                              candidates=candidates, stats=stats,
                              pairs_seconds=pairs_seconds)

    def build_regions(self, nlcs: CircleSet, grid: "_CircleGrid",
                      search: "_SearchOutcome", tol: float) -> list:
        """Grow the optimal region of each distinct best-scoring cover."""
        regions = []
        seen_covers: set[tuple[int, ...]] = set()
        for idx in search.best_idx:
            x = float(search.candidates[idx, 0])
            y = float(search.candidates[idx, 1])
            bucket = grid.point_candidates(x, y)
            _, cover = neighborhood_cover(nlcs, x, y, tol=tol,
                                          candidates=bucket)
            cover = np.sort(cover)
            key = tuple(int(i) for i in cover)
            if key in seen_covers:
                continue
            seen_covers.add(key)
            regions.append(compute_optimal_region(
                Rect(x, y, x, y), cover, nlcs, score=search.best))
        regions.sort(key=lambda r: -r.score)
        return regions


# ---------------------------------------------------------------------- #
# Numpy bucket grid over circle bounding boxes
# ---------------------------------------------------------------------- #

class _CircleGrid:
    """Bins circle bounding boxes into a uniform grid, fully vectorised.

    Produces (1) all intersecting circle pairs, each exactly once, and
    (2) batched coverage scores for candidate points.  The pure-object
    :class:`~repro.index.grid.UniformGrid` provides the same service for
    generic items; this variant avoids per-circle Python objects because
    MaxOverlap routinely handles 10^5 NLCs.
    """

    def __init__(self, nlcs: CircleSet, target_per_cell: float) -> None:
        self.nlcs = nlcs
        bounds = nlcs.bounding_box()
        n = len(nlcs)
        area = max(bounds.area, 1e-30)
        density_edge = math.sqrt(area * target_per_cell / n)
        # Size cells from the NLC radius distribution, not the circle
        # extent: with few sites every NLC is huge relative to the
        # domain, and extent-sized cells degenerate to a handful of
        # buckets that each hold (and pair up) every circle.  Half
        # the median radius keeps buckets below the typical
        # circle, so the sweep only pairs genuinely nearby circles;
        # the density edge still bounds the grid for tiny-radius sets.
        median_r = float(np.median(nlcs.r)) if n else 0.0
        cell = max(median_r / 2.0, density_edge)
        if cell <= 0.0:
            cell = max(bounds.diagonal, 1.0) / 16.0
        self.cell = cell
        self.x0 = bounds.xmin
        self.y0 = bounds.ymin
        self.nx = max(1, math.ceil(bounds.width / cell))
        self.ny = max(1, math.ceil(bounds.height / cell))

        cx, cy, r = nlcs.cx, nlcs.cy, nlcs.r
        self._ix0 = self._clip_x(np.floor((cx - r - self.x0) / cell))
        self._ix1 = self._clip_x(np.floor((cx + r - self.x0) / cell))
        self._iy0 = self._clip_y(np.floor((cy - r - self.y0) / cell))
        self._iy1 = self._clip_y(np.floor((cy + r - self.y0) / cell))

        wx = self._ix1 - self._ix0 + 1
        wy = self._iy1 - self._iy0 + 1
        counts = wx * wy
        total = int(counts.sum())
        circ = np.repeat(np.arange(n, dtype=np.int64), counts)
        starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        rep_wx = np.repeat(wx, counts)
        ox = offsets % rep_wx
        oy = offsets // rep_wx
        cell_ids = ((np.repeat(self._iy0, counts) + oy) * self.nx
                    + np.repeat(self._ix0, counts) + ox)

        order = np.argsort(cell_ids, kind="stable")
        self._cell_ids = cell_ids[order]
        self._cell_circles = circ[order]
        self._unique_cells, self._cell_starts = np.unique(
            self._cell_ids, return_index=True)

    def _clip_x(self, arr: np.ndarray) -> np.ndarray:
        return np.clip(arr, 0, self.nx - 1).astype(np.int64)

    def _clip_y(self, arr: np.ndarray) -> np.ndarray:
        return np.clip(arr, 0, self.ny - 1).astype(np.int64)

    def _bucket(self, pos: int) -> np.ndarray:
        start = self._cell_starts[pos]
        end = (self._cell_starts[pos + 1]
               if pos + 1 < len(self._cell_starts)
               else len(self._cell_ids))
        return self._cell_circles[start:end]

    def point_candidates(self, x: float, y: float) -> np.ndarray:
        """Circles whose bounding box covers the cell of ``(x, y)`` — a
        superset of the disks whose closure contains the point."""
        cell_id = (self._clip_y(np.floor((np.asarray(y) - self.y0)
                                         / self.cell)) * self.nx
                   + self._clip_x(np.floor((np.asarray(x) - self.x0)
                                           / self.cell)))
        pos = int(np.searchsorted(self._unique_cells, cell_id))
        if (pos >= len(self._unique_cells)
                or self._unique_cells[pos] != cell_id):
            return np.zeros(0, dtype=np.int64)
        return self._bucket(pos)

    def intersecting_pairs(self) -> tuple[np.ndarray, np.ndarray, int]:
        """All pairs ``(i, j)``, ``i < j``, of truly intersecting disks.

        Each pair is tested exactly once: within a bucket, a pair counts
        only when this bucket is the lexicographically smallest cell the
        two boxes share.
        """
        nlcs = self.nlcs
        out_a: list[np.ndarray] = []
        out_b: list[np.ndarray] = []
        candidate_pairs = 0
        for pos, cell_id in enumerate(self._unique_cells):
            bucket = self._bucket(pos)
            m = bucket.shape[0]
            if m < 2:
                continue
            cell_x = int(cell_id % self.nx)
            cell_y = int(cell_id // self.nx)
            i_idx, j_idx = np.triu_indices(m, k=1)
            a = bucket[i_idx]
            b = bucket[j_idx]
            candidate_pairs += a.shape[0]
            # Ownership: emit only from the smallest shared cell.
            own_x = np.maximum(self._ix0[a], self._ix0[b])
            own_y = np.maximum(self._iy0[a], self._iy0[b])
            own = (own_x == cell_x) & (own_y == cell_y)
            if not own.any():
                continue
            a = a[own]
            b = b[own]
            dx = nlcs.cx[a] - nlcs.cx[b]
            dy = nlcs.cy[a] - nlcs.cy[b]
            rsum = nlcs.r[a] + nlcs.r[b]
            hit = dx * dx + dy * dy <= rsum * rsum
            if hit.any():
                out_a.append(a[hit])
                out_b.append(b[hit])
        if out_a:
            return (np.concatenate(out_a), np.concatenate(out_b),
                    candidate_pairs)
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, candidate_pairs

    def coverage_scores(self, points: np.ndarray,
                        tol: float) -> tuple[np.ndarray, int]:
        """Step (d): total covering score at each candidate point."""
        nlcs = self.nlcs
        pts = np.asarray(points, dtype=np.float64)
        px_cells = self._clip_x(np.floor((pts[:, 0] - self.x0) / self.cell))
        py_cells = self._clip_y(np.floor((pts[:, 1] - self.y0) / self.cell))
        point_cells = py_cells * self.nx + px_cells

        order = np.argsort(point_cells, kind="stable")
        scores = np.zeros(pts.shape[0], dtype=np.float64)
        tests = 0

        sorted_cells = point_cells[order]
        boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
        group_starts = np.concatenate(([0], boundaries))
        group_ends = np.concatenate((boundaries, [len(sorted_cells)]))
        for gs, ge in zip(group_starts, group_ends):
            cell_id = sorted_cells[gs]
            pos = np.searchsorted(self._unique_cells, cell_id)
            if (pos >= len(self._unique_cells)
                    or self._unique_cells[pos] != cell_id):
                continue
            bucket = self._bucket(pos)
            idx = order[gs:ge]
            tests += bucket.shape[0] * idx.shape[0]
            # cover_scores_at_points chunks its own points x circles
            # broadcast (~16 MB cap), so dense cells on skewed data no
            # longer need an outer chunking loop here.
            scores[idx] = nlcs.cover_scores_at_points(
                pts[idx], bucket, tol=tol)
        return scores, tests


def _intersection_points(nlcs: CircleSet, pairs_a: np.ndarray,
                         pairs_b: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Step (c), batched: circumference intersection points of every pair.

    Returns ``(points, isolated_mask)`` where ``isolated_mask`` flags NLCs
    that appear in no intersecting pair.
    """
    n = len(nlcs)
    isolated = np.ones(n, dtype=bool)
    if pairs_a.shape[0] == 0:
        return np.zeros((0, 2), dtype=np.float64), isolated
    isolated[pairs_a] = False
    isolated[pairs_b] = False

    ax, ay, ar = nlcs.cx[pairs_a], nlcs.cy[pairs_a], nlcs.r[pairs_a]
    bx, by, br = nlcs.cx[pairs_b], nlcs.cy[pairs_b], nlcs.r[pairs_b]
    dx = bx - ax
    dy = by - ay
    d = np.hypot(dx, dy)
    # Concentric pairs (d == 0) have no circumference crossings; contained
    # pairs (d < |ar - br|) neither.  Both still intersect as *disks* so
    # they were correctly counted as intersecting, they just add no points.
    with np.errstate(divide="ignore", invalid="ignore"):
        ell = (d * d + ar * ar - br * br) / (2.0 * d)
        h2 = ar * ar - ell * ell
    valid = (d > 0.0) & (h2 >= 0.0) & (d >= np.abs(ar - br))
    if not valid.any():
        return np.zeros((0, 2), dtype=np.float64), isolated

    ell = ell[valid]
    h = np.sqrt(np.maximum(h2[valid], 0.0))
    ux = dx[valid] / d[valid]
    uy = dy[valid] / d[valid]
    px = ax[valid] + ell * ux
    py = ay[valid] + ell * uy
    first = np.column_stack((px - h * uy, py + h * ux))
    second = np.column_stack((px + h * uy, py - h * ux))
    return np.vstack((first, second)), isolated
