"""Structure-of-arrays store of scored disks with vectorised predicates.

MaxFirst's inner loop classifies every NLC against a quadrant: does the
disk intersect the quadrant (``Q.I``), and does it contain the quadrant
(``Q.C``)?  The paper answers this with an R-tree range query per quadrant;
in pure Python that is dominated by per-object overhead.  ``CircleSet``
stores all NLCs as parallel numpy arrays and classifies an entire candidate
set against a rectangle in a handful of array operations.

Combined with *hierarchical candidate passing* — a child quadrant's
intersecting set is always a subset of its parent's, so each quadrant only
re-tests its parent's survivors — this is what makes a pure-Python
MaxFirst run at interactive speed (see DESIGN.md §5.1; the R-tree backend
is retained for the ablation benchmark).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.index._ckernel import load_quad_kernel
from repro.obs import metrics as _obs_metrics

#: Deterministic work counters over the batched classification kernel.
#: Counted at call granularity — one batch per classify/quad_split
#: invocation, rect count per batch — so the compiled fast path and the
#: REPRO_NO_CKERNEL numpy fallback report identical values (a quad split
#: is one batch of four rects on either path).
_KERNEL_BATCHES = _obs_metrics.counter("kernel_batches")
_KERNEL_RECTS = _obs_metrics.counter("kernel_rects")
#: High-water mark of the compiled kernel's reusable scratch rows.
_SCRATCH_BYTES = _obs_metrics.gauge("numpy_scratch_bytes_peak")

# Broadcast chunking cap: float64 intermediates stay under ~16 MB.
_BROADCAST_ELEMENTS = 2_000_000

# Shared empty containing-mask for rectangles no candidate reaches.
_EMPTY_MASK = np.zeros(0, dtype=bool)


def _rects_as_array(rects) -> np.ndarray:
    """``(n, 4)`` float64 view of a rect batch (ndarray or Rect sequence)."""
    if isinstance(rects, np.ndarray):
        arr = np.ascontiguousarray(rects, dtype=np.float64)
    else:
        arr = np.array([(rc.xmin, rc.ymin, rc.xmax, rc.ymax)
                        for rc in rects], dtype=np.float64)
        if arr.size == 0:
            return arr.reshape(0, 4)
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise ValueError(
            f"rects must be (n, 4) (xmin, ymin, xmax, ymax) rows, "
            f"got shape {arr.shape}")
    return arr


class CircleSet:
    """Immutable batch of scored disks.

    Attributes
    ----------
    cx, cy, r:
        ``float64`` arrays of centres and radii.
    scores:
        Per-disk scores (Definition 2 of the paper:
        ``w(o) * (prob_i - prob_{i+1})``).
    owners:
        Index of the customer object owning each disk (-1 when unknown).
    levels:
        1-based NLC level ``i`` of each disk (0 when unknown).
    """

    __slots__ = ("cx", "cy", "r", "scores", "owners", "levels", "_bbox",
                 "_classifiers")

    def __init__(self, cx: np.ndarray, cy: np.ndarray, r: np.ndarray,
                 scores: np.ndarray, owners: np.ndarray | None = None,
                 levels: np.ndarray | None = None) -> None:
        self.cx = np.ascontiguousarray(cx, dtype=np.float64)
        self.cy = np.ascontiguousarray(cy, dtype=np.float64)
        self.r = np.ascontiguousarray(r, dtype=np.float64)
        self.scores = np.ascontiguousarray(scores, dtype=np.float64)
        n = self.cx.shape[0]
        if not (self.cy.shape[0] == self.r.shape[0]
                == self.scores.shape[0] == n):
            raise ValueError("CircleSet arrays must have equal length")
        if n and float(self.r.min()) < 0:
            raise ValueError("negative radius in CircleSet")
        if owners is None:
            owners = np.full(n, -1, dtype=np.int64)
        if levels is None:
            levels = np.zeros(n, dtype=np.int64)
        self.owners = np.ascontiguousarray(owners, dtype=np.int64)
        self.levels = np.ascontiguousarray(levels, dtype=np.int64)
        self._bbox: Rect | None = None
        self._classifiers: dict[float, RectClassifier] = {}

    @classmethod
    def from_circles(cls, circles: Iterable[Circle],
                     scores: Sequence[float] | None = None) -> "CircleSet":
        """Build from :class:`~repro.geometry.circle.Circle` objects."""
        circles = list(circles)
        cx = np.array([c.cx for c in circles], dtype=np.float64)
        cy = np.array([c.cy for c in circles], dtype=np.float64)
        r = np.array([c.r for c in circles], dtype=np.float64)
        if scores is None:
            sc = np.ones(len(circles), dtype=np.float64)
        else:
            sc = np.asarray(scores, dtype=np.float64)
        return cls(cx, cy, r, sc)

    def __len__(self) -> int:
        return int(self.cx.shape[0])

    def circle(self, index: int) -> Circle:
        """The ``index``-th disk as a scalar :class:`Circle`."""
        return Circle(float(self.cx[index]), float(self.cy[index]),
                      float(self.r[index]))

    def circles(self, indices: Iterable[int]) -> list[Circle]:
        """Scalar circles for a batch of indices."""
        return [self.circle(int(i)) for i in indices]

    def signed_boundary_distances(
            self, x: float, y: float,
            candidates: np.ndarray | None = None) -> np.ndarray:
        """SoA batch of ``Circle.signed_boundary_distance``: distance from
        ``(x, y)`` to each circumference, positive inside the disk.

        ``candidates`` optionally restricts (and orders) the result to a
        subset of indices — Phase II seeds its clip ordering with one
        call over a quadrant's cover instead of one scalar call per
        covering circle.
        """
        if candidates is None:
            cx, cy, r = self.cx, self.cy, self.r
        else:
            cx = self.cx[candidates]
            cy = self.cy[candidates]
            r = self.r[candidates]
        return r - np.hypot(x - cx, y - cy)

    def bounding_box(self) -> Rect:
        """Tight bounding box of all disks (cached)."""
        if self._bbox is None:
            if len(self) == 0:
                raise ValueError("bounding_box of empty CircleSet")
            self._bbox = Rect(
                float((self.cx - self.r).min()),
                float((self.cy - self.r).min()),
                float((self.cx + self.r).max()),
                float((self.cy + self.r).max()),
            )
        return self._bbox

    # ------------------------------------------------------------------ #
    # Rectangle classification (the Theorem 1 predicates)
    # ------------------------------------------------------------------ #

    def intersects_rect_mask(self, rect: Rect,
                             candidates: np.ndarray | None = None
                             ) -> np.ndarray:
        """Boolean mask: which candidate disks' *interiors* intersect the
        rectangle?  ``candidates=None`` tests every disk.

        The strict inequality implements region semantics (see
        DESIGN.md §5): a disk that merely grazes a quadrant at a boundary
        point cannot contribute score to any full-dimensional region inside
        the quadrant, so it does not belong to ``Q.I``.  This is also what
        makes MaxFirst terminate at the points where many NLCs meet (every
        customer's ``k``-th NLC passes exactly through its ``k``-th nearest
        site).
        """
        cx, cy, r = self._gather(candidates)
        dx = np.maximum(rect.xmin - cx, 0.0)
        np.maximum(dx, cx - rect.xmax, out=dx)
        dy = np.maximum(rect.ymin - cy, 0.0)
        np.maximum(dy, cy - rect.ymax, out=dy)
        return dx * dx + dy * dy < r * r

    def contains_rect_mask(self, rect: Rect,
                           candidates: np.ndarray | None = None
                           ) -> np.ndarray:
        """Boolean mask: which candidate disks contain the whole
        rectangle?"""
        cx, cy, r = self._gather(candidates)
        dx = np.maximum(cx - rect.xmin, rect.xmax - cx)
        dy = np.maximum(cy - rect.ymin, rect.ymax - cy)
        return dx * dx + dy * dy <= r * r

    def classify_rect(self, rect: Rect,
                      candidates: np.ndarray | None = None,
                      graze_tol: float = 0.0
                      ) -> tuple[np.ndarray, np.ndarray, float, float]:
        """One-pass computation of a quadrant's Theorem 1 data.

        Returns ``(intersecting, containing_mask, max_hat, min_hat)`` where
        ``intersecting`` is the index array of disks in ``Q.I``,
        ``containing_mask`` flags which of those are also in ``Q.C``,
        ``max_hat = sum(score, Q.I)`` and ``min_hat = sum(score, Q.C)``.

        ``graze_tol`` is the geometric resolution: a disk must overlap the
        rectangle by more than ``graze_tol`` to join ``Q.I``, and may fall
        short of containing it by up to ``graze_tol`` and still join
        ``Q.C``.  The NLC construction produces exact circle/site
        incidences that float rounding smears by an ulp either way; the
        tolerance classifies those cleanly instead of splitting down to
        machine epsilon around them.  Features thinner than ``graze_tol``
        (default 0: exact predicates) are below the solver's resolution by
        definition.
        """
        if candidates is None:
            candidates = np.arange(len(self), dtype=np.int64)
        cx = self.cx[candidates]
        cy = self.cy[candidates]
        r = self.r[candidates]

        near_dx = np.maximum(rect.xmin - cx, 0.0)
        np.maximum(near_dx, cx - rect.xmax, out=near_dx)
        near_dy = np.maximum(rect.ymin - cy, 0.0)
        np.maximum(near_dy, cy - rect.ymax, out=near_dy)
        # Strict: open-disk intersection (region semantics; see
        # intersects_rect_mask), shrunk by the graze tolerance.
        r_in = np.maximum(r - graze_tol, 0.0)
        inter_mask = near_dx * near_dx + near_dy * near_dy < r_in * r_in

        intersecting = candidates[inter_mask]
        if intersecting.shape[0] == 0:
            empty = np.zeros(0, dtype=bool)
            return intersecting, empty, 0.0, 0.0

        icx = cx[inter_mask]
        icy = cy[inter_mask]
        ir_out = r[inter_mask] + graze_tol
        far_dx = np.maximum(icx - rect.xmin, rect.xmax - icx)
        far_dy = np.maximum(icy - rect.ymin, rect.ymax - icy)
        containing_mask = far_dx * far_dx + far_dy * far_dy <= ir_out * ir_out

        sc = self.scores[intersecting]
        max_hat = float(sc.sum())
        min_hat = float(sc[containing_mask].sum())
        return intersecting, containing_mask, max_hat, min_hat

    def classify_rects(self, rects, candidates: np.ndarray | None = None,
                       graze_tol: float = 0.0
                       ) -> list[tuple[np.ndarray, np.ndarray, float, float]]:
        """Batched :meth:`classify_rect`: N rectangles, one candidate set.

        ``rects`` is an ``(n, 4)`` float array of ``(xmin, ymin, xmax,
        ymax)`` rows, or any sequence of :class:`Rect`.  Returns one
        ``(intersecting, containing_mask, max_hat, min_hat)`` tuple per
        rectangle, element-wise identical to calling
        :meth:`classify_rect` in a loop (asserted by a property test).

        The point is amortisation: the candidate gather and the
        near/far distance arithmetic run once for the whole batch
        instead of once per rectangle, which is what makes classifying
        MaxFirst's whole split frontier (all four children of a split)
        cost barely more than classifying one child.  The broadcast is
        chunked over rectangles so no intermediate array exceeds
        ~16 MB, whatever the batch size.
        """
        if candidates is None:
            candidates = np.arange(len(self), dtype=np.int64)
        return self.rect_classifier(graze_tol).classify(rects, candidates)

    def rects_intersecting(self, rects) -> list[np.ndarray]:
        """Per-rectangle index arrays of disks whose interior meets it.

        The batch form of :meth:`intersects_rect_mask` (open-disk
        semantics, no graze shrink): one ``(n_rects, n_disks)`` broadcast,
        chunked to the usual ~16 MB cap, returning a sorted ``int64``
        index array per rectangle.  This is the engine layer's tile-halo
        predicate: the open-disk set is a superset of every graze-shrunk
        classification a shard will run inside the tile, so seeding a
        shard with these candidates preserves the single-process ``Q.I``
        sets exactly.
        """
        arr = _rects_as_array(rects)
        n_rects = arr.shape[0]
        out: list[np.ndarray] = []
        if n_rects == 0:
            return out
        cx, cy, r = self.cx, self.cy, self.r
        r2 = r * r
        n = cx.shape[0]
        if n == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(n_rects)]
        rows = max(1, _BROADCAST_ELEMENTS // (2 * n))
        for start in range(0, n_rects, rows):
            stop = min(start + rows, n_rects)
            chunk = arr[start:stop]
            dx = np.maximum(chunk[:, 0:1] - cx, 0.0)
            np.maximum(dx, cx - chunk[:, 2:3], out=dx)
            dy = np.maximum(chunk[:, 1:2] - cy, 0.0)
            np.maximum(dy, cy - chunk[:, 3:4], out=dy)
            hit = dx * dx + dy * dy < r2
            for row in range(stop - start):
                out.append(np.flatnonzero(hit[row]).astype(np.int64))
        return out

    def rect_classifier(self, graze_tol: float = 0.0) -> "RectClassifier":
        """A prepared :class:`RectClassifier` for ``graze_tol`` (cached).

        Hot callers (the vector backend classifies every split frontier
        through one of these) should hold the instance rather than going
        through :meth:`classify_rects`, which re-resolves the cache per
        call.
        """
        clf = self._classifiers.get(graze_tol)
        if clf is None:
            clf = RectClassifier(self, graze_tol)
            self._classifiers[graze_tol] = clf
        return clf

    # ------------------------------------------------------------------ #
    # Point coverage
    # ------------------------------------------------------------------ #

    def contains_point_mask(self, x: float, y: float,
                            candidates: np.ndarray | None = None,
                            tol: float = 0.0) -> np.ndarray:
        """Boolean mask: which candidate disks contain ``(x, y)``
        (closed, with ``tol`` slack on the boundary)?"""
        cx, cy, r = self._gather(candidates)
        dx = cx - x
        dy = cy - y
        rr = r + tol
        return dx * dx + dy * dy <= rr * rr

    def cover_score_at(self, x: float, y: float,
                       candidates: np.ndarray | None = None,
                       tol: float = 0.0) -> float:
        """Total score of the disks containing ``(x, y)`` — the paper's
        ``total_score`` (Definition 4) evaluated exactly."""
        mask = self.contains_point_mask(x, y, candidates, tol)
        if candidates is None:
            return float(self.scores[mask].sum())
        return float(self.scores[candidates[mask]].sum())

    def cover_scores_at_points(self, points: np.ndarray,
                               candidates: np.ndarray,
                               tol: float = 0.0) -> np.ndarray:
        """Total scores at a batch of points against one candidate set.

        ``points`` is ``(n, 2)``; the result is ``(n,)``.  Cost is
        ``O(n * len(candidates))`` — callers bucket points so the candidate
        sets stay small (see MaxOverlap's coverage counting).  The
        broadcast is chunked over points so peak memory stays ~16 MB per
        intermediate regardless of ``n`` (MaxOverlap feeds millions of
        intersection points against dense buckets).
        """
        pts = np.asarray(points, dtype=np.float64)
        cx = self.cx[candidates]
        cy = self.cy[candidates]
        rr = self.r[candidates] + tol
        rr2 = rr * rr
        sc = self.scores[candidates]
        n_pts = pts.shape[0]
        out = np.zeros(n_pts, dtype=np.float64)
        if n_pts == 0 or cx.shape[0] == 0:
            return out
        rows = max(1, _BROADCAST_ELEMENTS // cx.shape[0])
        for start in range(0, n_pts, rows):
            stop = start + rows
            dx = pts[start:stop, 0:1] - cx
            dy = pts[start:stop, 1:2] - cy
            inside = dx * dx + dy * dy <= rr2
            out[start:stop] = inside @ sc
        return out

    def _gather(self, candidates: np.ndarray | None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if candidates is None:
            return self.cx, self.cy, self.r
        return (self.cx[candidates], self.cy[candidates],
                self.r[candidates])

    # ------------------------------------------------------------------ #
    # Shared-memory transport (zero-copy hand-off to worker processes)
    # ------------------------------------------------------------------ #

    def to_shared(self):
        """Publish the SoA arrays into one shared-memory store.

        Compatibility shim over :func:`repro.store.publish` with the
        ``shm`` backend — the segment lifecycle (attachment cache,
        BufferError graveyard, finally-unlink) lives in
        :mod:`repro.store.shm` since the storage-tier refactor.  Ship
        the returned store's picklable ``handle`` to workers and
        rebuild views with :meth:`from_shared`; the caller owns the
        lifecycle via ``close()`` (idempotent, exception-safe).
        """
        from repro import store

        return store.get_backend("shm").publish(self)

    @classmethod
    def from_shared(cls, handle) -> "CircleSet":
        """Rebuild a ``CircleSet`` as zero-copy views onto a store.

        Compatibility shim over :func:`repro.store.attach`.  Accepts a
        full store handle from any backend, or the legacy
        ``(name, length)`` pair for a shm segment published with
        capacity == length.  Attachments are cached per process (keyed
        by store key); views are read-only — ``CircleSet`` never
        mutates its arrays, and a stray write in a worker must fail
        loudly rather than corrupt every sibling's data.
        """
        from repro import store

        if len(handle) == 2:  # legacy (name, length) shm pair
            name, length = handle
            handle = ("shm", name, int(length), int(length), None)
        return store.attach(handle)


def detach_shared(keep: tuple[str, ...] = ()) -> None:
    """Drop this process's cached shm attachments (worker epoch turn).

    Compatibility shim over the shm backend's ``detach`` — ``keep``
    names segment/store keys whose mappings survive.  Views handed out
    earlier become invalid — callers rotate stores between solves,
    never during one.
    """
    from repro import store

    store.get_backend("shm").detach(keep)


def _shared_nlc_store():
    from repro.store.shm import ShmStore

    return ShmStore


def __getattr__(name: str):
    if name == "SharedNLCStore":
        # Legacy alias for the relocated shm store owner (lazy to keep
        # repro.store importing circleset without a cycle).
        return _shared_nlc_store()
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


class RectClassifier:
    """Prepared batched rectangle classifier for one graze tolerance.

    Everything that depends only on the disk set and the tolerance is
    hoisted out of the per-call path: centres, graze-adjusted *squared*
    radii and scores live in one packed ``(5, n)`` matrix, so a call
    pays a single fancy-index gather for its candidate columns instead
    of five, then pure broadcast arithmetic.  Results are element-wise
    identical to :meth:`CircleSet.classify_rect` — the squared-radius
    precomputation performs the same per-element ``maximum``/multiply
    the scalar kernel does, and the per-rect sums reduce the same
    compacted score arrays in the same order.
    """

    __slots__ = ("_packed", "_quad_fn", "_stride", "_scratch", "_ptrs")

    def __init__(self, circles: CircleSet, graze_tol: float) -> None:
        r_in = np.maximum(circles.r - graze_tol, 0.0)
        r_out = circles.r + graze_tol
        self._packed = np.stack(
            (circles.cx, circles.cy, r_in * r_in, r_out * r_out,
             circles.scores))
        self._quad_fn = load_quad_kernel()
        self._stride = 0
        self._scratch: tuple[np.ndarray, ...] = ()
        self._ptrs: tuple[int, ...] = ()

    def _grow_scratch(self, n: int) -> None:
        """(Re)allocate the compiled kernel's per-child output rows."""
        self._stride = n
        idx = np.empty((4, n), dtype=np.int64)
        mask = np.empty((4, n), dtype=np.uint8)
        sc = np.empty((4, n), dtype=np.float64)
        csc = np.empty((4, n), dtype=np.float64)
        counts = np.empty(4, dtype=np.int64)
        ccounts = np.empty(4, dtype=np.int64)
        self._scratch = (idx, mask, sc, csc, counts, ccounts)
        _SCRATCH_BYTES.observe_max(float(sum(
            a.nbytes for a in self._scratch)))
        packed = self._packed
        self._ptrs = tuple(a.ctypes.data for a in (
            packed[0], packed[1], packed[2], packed[3], packed[4],
            idx, mask, sc, csc, counts, ccounts))

    def quad_split(self, xmin: float, ymin: float, xmax: float, ymax: float,
                   px: float, py: float, candidates: np.ndarray
                   ) -> list[tuple[np.ndarray, np.ndarray, float, float]] | None:
        """Classify the four children of splitting a rect at ``(px, py)``.

        Single-pass compiled fast path for the dominant Phase I split
        shape (see ``_quadkernel.c``); returns the same four result
        tuples :meth:`classify` would, in ``Rect.split_at`` child order,
        or ``None`` when the compiled kernel is unavailable (caller
        falls back to the numpy batch kernel).
        """
        fn = self._quad_fn
        if (fn is None or candidates.dtype != np.int64
                or not candidates.flags["C_CONTIGUOUS"]):
            # Counted by classify() instead: the caller retries there, so
            # both kernel paths see one batch of four rects per split.
            return None
        _KERNEL_BATCHES.add()
        _KERNEL_RECTS.add(4)
        n = candidates.shape[0]
        empty = (candidates[:0], _EMPTY_MASK, 0.0, 0.0)
        if n == 0:
            return [empty] * 4
        if n > self._stride:
            self._grow_scratch(n)
        p = self._ptrs
        fn(p[0], p[1], p[2], p[3], p[4],
           candidates.ctypes.data, n,
           xmin, ymin, xmax, ymax, px, py,
           self._stride,
           p[5], p[6], p[7], p[8], p[9], p[10])
        idx_s, mask_s, sc_s, csc_s, counts, ccounts = self._scratch
        out: list[tuple[np.ndarray, np.ndarray, float, float]] = []
        for c, (h, hc) in enumerate(zip(counts.tolist(), ccounts.tolist())):
            if h == 0:
                out.append(empty)
                continue
            # Copy the compacted runs out of the reusable scratch rows;
            # the sums reduce the same score sequences the scalar
            # kernel's ``sc.sum()`` / ``sc[mask].sum()`` would.
            out.append((idx_s[c, :h].copy(),
                        mask_s[c, :h].copy().view(np.bool_),
                        float(sc_s[c, :h].sum()),
                        float(csc_s[c, :hc].sum())))
        return out

    def classify(self, rects, candidates: np.ndarray
                 ) -> list[tuple[np.ndarray, np.ndarray, float, float]]:
        """Classify a rect batch against one candidate index array.

        See :meth:`CircleSet.classify_rects` for the contract; this is
        its engine.  The x and y axes are processed as one stacked
        ``(rows, 2, n)`` broadcast and the per-rect results are carved
        out of flat concatenated gathers, so the call count stays
        constant in the batch size — per-element arithmetic is still
        the scalar kernel's, in the scalar kernel's grouping (``max``
        is associative exactly, and ``max(c-lo, hi-c)²`` equals
        ``min(lo-c, c-hi)²``), so results stay bit-identical.
        """
        arr = _rects_as_array(rects)
        n_rects = arr.shape[0]
        _KERNEL_BATCHES.add()
        _KERNEL_RECTS.add(n_rects)
        out: list[tuple[np.ndarray, np.ndarray, float, float]] = []
        if n_rects == 0:
            return out
        sub = self._packed[:, candidates]
        centers = sub[0:2]
        r_in2 = sub[2]
        r_out2 = sub[3]
        sc = sub[4]
        n_cand = centers.shape[1]
        if n_cand == 0:
            return [(candidates[:0], _EMPTY_MASK, 0.0, 0.0)
                    for _ in range(n_rects)]

        add_reduce = np.add.reduce
        rows = max(1, _BROADCAST_ELEMENTS // (2 * n_cand))
        for start in range(0, n_rects, rows):
            stop = min(start + rows, n_rects)
            chunk = arr[start:stop]
            # a = lo - c and b = c - hi per axis; the near (clamped) and
            # far corner distances are max(a, b, 0) and -min(a, b), and
            # the sign drops when squaring.
            a = chunk[:, 0:2, None] - centers
            b = centers - chunk[:, 2:4, None]
            near = np.maximum(a, b)
            np.maximum(near, 0.0, out=near)
            far = np.minimum(a, b, out=a)
            near *= near
            far *= far
            inter = near[:, 0, :] + near[:, 1, :] < r_in2
            contain = far[:, 0, :] + far[:, 1, :] <= r_out2
            # Flat extraction: one nonzero pass and one boolean gather
            # yield all rects' compacted index/score/mask runs back to
            # back, split by the per-rect hit counts (row-major order
            # keeps each run in the scalar kernel's element order, so
            # the sums reduce the same sequences).  Everything after
            # the two full-matrix passes touches only the hits.
            n_rows = stop - start
            hit_rows, cols = inter.nonzero()
            counts = np.bincount(hit_rows, minlength=n_rows).tolist()
            all_inter = candidates[cols]
            all_sc = sc[cols]
            all_mask = contain[inter]
            all_csc = all_sc[all_mask]
            ccounts = np.bincount(hit_rows[all_mask],
                                  minlength=n_rows).tolist()
            o = 0
            co = 0
            for c, cc in zip(counts, ccounts):
                if c == 0:
                    out.append((candidates[:0], _EMPTY_MASK, 0.0, 0.0))
                    continue
                nxt = o + c
                cnxt = co + cc
                out.append((all_inter[o:nxt], all_mask[o:nxt],
                            float(add_reduce(all_sc[o:nxt])),
                            float(add_reduce(all_csc[co:cnxt]))))
                o = nxt
                co = cnxt
        return out
