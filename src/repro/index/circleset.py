"""Structure-of-arrays store of scored disks with vectorised predicates.

MaxFirst's inner loop classifies every NLC against a quadrant: does the
disk intersect the quadrant (``Q.I``), and does it contain the quadrant
(``Q.C``)?  The paper answers this with an R-tree range query per quadrant;
in pure Python that is dominated by per-object overhead.  ``CircleSet``
stores all NLCs as parallel numpy arrays and classifies an entire candidate
set against a rectangle in a handful of array operations.

Combined with *hierarchical candidate passing* — a child quadrant's
intersecting set is always a subset of its parent's, so each quadrant only
re-tests its parent's survivors — this is what makes a pure-Python
MaxFirst run at interactive speed (see DESIGN.md §5.1; the R-tree backend
is retained for the ablation benchmark).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.rect import Rect


class CircleSet:
    """Immutable batch of scored disks.

    Attributes
    ----------
    cx, cy, r:
        ``float64`` arrays of centres and radii.
    scores:
        Per-disk scores (Definition 2 of the paper:
        ``w(o) * (prob_i - prob_{i+1})``).
    owners:
        Index of the customer object owning each disk (-1 when unknown).
    levels:
        1-based NLC level ``i`` of each disk (0 when unknown).
    """

    __slots__ = ("cx", "cy", "r", "scores", "owners", "levels", "_bbox")

    def __init__(self, cx: np.ndarray, cy: np.ndarray, r: np.ndarray,
                 scores: np.ndarray, owners: np.ndarray | None = None,
                 levels: np.ndarray | None = None) -> None:
        self.cx = np.ascontiguousarray(cx, dtype=np.float64)
        self.cy = np.ascontiguousarray(cy, dtype=np.float64)
        self.r = np.ascontiguousarray(r, dtype=np.float64)
        self.scores = np.ascontiguousarray(scores, dtype=np.float64)
        n = self.cx.shape[0]
        if not (self.cy.shape[0] == self.r.shape[0]
                == self.scores.shape[0] == n):
            raise ValueError("CircleSet arrays must have equal length")
        if n and float(self.r.min()) < 0:
            raise ValueError("negative radius in CircleSet")
        if owners is None:
            owners = np.full(n, -1, dtype=np.int64)
        if levels is None:
            levels = np.zeros(n, dtype=np.int64)
        self.owners = np.ascontiguousarray(owners, dtype=np.int64)
        self.levels = np.ascontiguousarray(levels, dtype=np.int64)
        self._bbox: Rect | None = None

    @classmethod
    def from_circles(cls, circles: Iterable[Circle],
                     scores: Sequence[float] | None = None) -> "CircleSet":
        """Build from :class:`~repro.geometry.circle.Circle` objects."""
        circles = list(circles)
        cx = np.array([c.cx for c in circles], dtype=np.float64)
        cy = np.array([c.cy for c in circles], dtype=np.float64)
        r = np.array([c.r for c in circles], dtype=np.float64)
        if scores is None:
            sc = np.ones(len(circles), dtype=np.float64)
        else:
            sc = np.asarray(scores, dtype=np.float64)
        return cls(cx, cy, r, sc)

    def __len__(self) -> int:
        return int(self.cx.shape[0])

    def circle(self, index: int) -> Circle:
        """The ``index``-th disk as a scalar :class:`Circle`."""
        return Circle(float(self.cx[index]), float(self.cy[index]),
                      float(self.r[index]))

    def circles(self, indices: Iterable[int]) -> list[Circle]:
        """Scalar circles for a batch of indices."""
        return [self.circle(int(i)) for i in indices]

    def bounding_box(self) -> Rect:
        """Tight bounding box of all disks (cached)."""
        if self._bbox is None:
            if len(self) == 0:
                raise ValueError("bounding_box of empty CircleSet")
            self._bbox = Rect(
                float((self.cx - self.r).min()),
                float((self.cy - self.r).min()),
                float((self.cx + self.r).max()),
                float((self.cy + self.r).max()),
            )
        return self._bbox

    # ------------------------------------------------------------------ #
    # Rectangle classification (the Theorem 1 predicates)
    # ------------------------------------------------------------------ #

    def intersects_rect_mask(self, rect: Rect,
                             candidates: np.ndarray | None = None
                             ) -> np.ndarray:
        """Boolean mask: which candidate disks' *interiors* intersect the
        rectangle?  ``candidates=None`` tests every disk.

        The strict inequality implements region semantics (see
        DESIGN.md §5): a disk that merely grazes a quadrant at a boundary
        point cannot contribute score to any full-dimensional region inside
        the quadrant, so it does not belong to ``Q.I``.  This is also what
        makes MaxFirst terminate at the points where many NLCs meet (every
        customer's ``k``-th NLC passes exactly through its ``k``-th nearest
        site).
        """
        cx, cy, r = self._gather(candidates)
        dx = np.maximum(rect.xmin - cx, 0.0)
        np.maximum(dx, cx - rect.xmax, out=dx)
        dy = np.maximum(rect.ymin - cy, 0.0)
        np.maximum(dy, cy - rect.ymax, out=dy)
        return dx * dx + dy * dy < r * r

    def contains_rect_mask(self, rect: Rect,
                           candidates: np.ndarray | None = None
                           ) -> np.ndarray:
        """Boolean mask: which candidate disks contain the whole
        rectangle?"""
        cx, cy, r = self._gather(candidates)
        dx = np.maximum(cx - rect.xmin, rect.xmax - cx)
        dy = np.maximum(cy - rect.ymin, rect.ymax - cy)
        return dx * dx + dy * dy <= r * r

    def classify_rect(self, rect: Rect,
                      candidates: np.ndarray | None = None,
                      graze_tol: float = 0.0
                      ) -> tuple[np.ndarray, np.ndarray, float, float]:
        """One-pass computation of a quadrant's Theorem 1 data.

        Returns ``(intersecting, containing_mask, max_hat, min_hat)`` where
        ``intersecting`` is the index array of disks in ``Q.I``,
        ``containing_mask`` flags which of those are also in ``Q.C``,
        ``max_hat = sum(score, Q.I)`` and ``min_hat = sum(score, Q.C)``.

        ``graze_tol`` is the geometric resolution: a disk must overlap the
        rectangle by more than ``graze_tol`` to join ``Q.I``, and may fall
        short of containing it by up to ``graze_tol`` and still join
        ``Q.C``.  The NLC construction produces exact circle/site
        incidences that float rounding smears by an ulp either way; the
        tolerance classifies those cleanly instead of splitting down to
        machine epsilon around them.  Features thinner than ``graze_tol``
        (default 0: exact predicates) are below the solver's resolution by
        definition.
        """
        if candidates is None:
            candidates = np.arange(len(self), dtype=np.int64)
        cx = self.cx[candidates]
        cy = self.cy[candidates]
        r = self.r[candidates]

        near_dx = np.maximum(rect.xmin - cx, 0.0)
        np.maximum(near_dx, cx - rect.xmax, out=near_dx)
        near_dy = np.maximum(rect.ymin - cy, 0.0)
        np.maximum(near_dy, cy - rect.ymax, out=near_dy)
        # Strict: open-disk intersection (region semantics; see
        # intersects_rect_mask), shrunk by the graze tolerance.
        r_in = np.maximum(r - graze_tol, 0.0)
        inter_mask = near_dx * near_dx + near_dy * near_dy < r_in * r_in

        intersecting = candidates[inter_mask]
        if intersecting.shape[0] == 0:
            empty = np.zeros(0, dtype=bool)
            return intersecting, empty, 0.0, 0.0

        icx = cx[inter_mask]
        icy = cy[inter_mask]
        ir_out = r[inter_mask] + graze_tol
        far_dx = np.maximum(icx - rect.xmin, rect.xmax - icx)
        far_dy = np.maximum(icy - rect.ymin, rect.ymax - icy)
        containing_mask = far_dx * far_dx + far_dy * far_dy <= ir_out * ir_out

        sc = self.scores[intersecting]
        max_hat = float(sc.sum())
        min_hat = float(sc[containing_mask].sum())
        return intersecting, containing_mask, max_hat, min_hat

    # ------------------------------------------------------------------ #
    # Point coverage
    # ------------------------------------------------------------------ #

    def contains_point_mask(self, x: float, y: float,
                            candidates: np.ndarray | None = None,
                            tol: float = 0.0) -> np.ndarray:
        """Boolean mask: which candidate disks contain ``(x, y)``
        (closed, with ``tol`` slack on the boundary)?"""
        cx, cy, r = self._gather(candidates)
        dx = cx - x
        dy = cy - y
        rr = r + tol
        return dx * dx + dy * dy <= rr * rr

    def cover_score_at(self, x: float, y: float,
                       candidates: np.ndarray | None = None,
                       tol: float = 0.0) -> float:
        """Total score of the disks containing ``(x, y)`` — the paper's
        ``total_score`` (Definition 4) evaluated exactly."""
        mask = self.contains_point_mask(x, y, candidates, tol)
        if candidates is None:
            return float(self.scores[mask].sum())
        return float(self.scores[candidates[mask]].sum())

    def cover_scores_at_points(self, points: np.ndarray,
                               candidates: np.ndarray,
                               tol: float = 0.0) -> np.ndarray:
        """Total scores at a batch of points against one candidate set.

        ``points`` is ``(n, 2)``; the result is ``(n,)``.  Cost is
        ``O(n * len(candidates))`` — callers bucket points so the candidate
        sets stay small (see MaxOverlap's coverage counting).
        """
        pts = np.asarray(points, dtype=np.float64)
        cx = self.cx[candidates]
        cy = self.cy[candidates]
        rr = self.r[candidates] + tol
        dx = pts[:, 0:1] - cx[None, :]
        dy = pts[:, 1:2] - cy[None, :]
        inside = dx * dx + dy * dy <= (rr * rr)[None, :]
        return inside @ self.scores[candidates]

    def _gather(self, candidates: np.ndarray | None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if candidates is None:
            return self.cx, self.cy, self.r
        return (self.cx[candidates], self.cy[candidates],
                self.r[candidates])
