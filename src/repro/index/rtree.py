"""An R-tree over rectangles, built from scratch.

Supports the three operations the MaxBRkNN pipeline needs — Sort-Tile-
Recursive (STR) bulk loading, rectangle range search and best-first
nearest-neighbour search — plus dynamic insertion with Guttman's quadratic
split and deletion with re-insertion, so the index is usable as a general
substrate.

Items are arbitrary Python objects paired with their bounding
:class:`~repro.geometry.rect.Rect`.  Point data is indexed with degenerate
rectangles; circles with their bounding boxes (the caller re-checks the
exact circle predicate, as MaxOverlap does in step (d) of its pipeline).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.geometry.rect import Rect
from repro.obs import metrics as _obs_metrics

#: Deterministic work counter: nodes examined by range/nearest queries.
#: Accumulated per call (one registry add per query) so the traversal
#: loops stay handle-free.
_NODE_VISITS = _obs_metrics.counter("rtree_node_visits")

DEFAULT_MAX_ENTRIES = 16


class _Node:
    """An R-tree node: leaves hold ``(rect, item)``, internal nodes hold
    child nodes.  ``rect`` is the tight bounding box of the contents."""

    __slots__ = ("is_leaf", "entries", "rect")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list = []  # leaf: (Rect, item); internal: _Node
        self.rect: Rect | None = None

    def recompute_rect(self) -> None:
        if self.is_leaf:
            rects = [r for r, _ in self.entries]
        else:
            rects = [child.rect for child in self.entries]
        if not rects:
            self.rect = None
            return
        out = rects[0]
        for r in rects[1:]:
            out = out.union(r)
        self.rect = out

    def entry_rect(self, index: int) -> Rect:
        if self.is_leaf:
            return self.entries[index][0]
        return self.entries[index].rect


class RTree:
    """R-tree with STR bulk loading and quadratic-split insertion.

    Parameters
    ----------
    max_entries:
        Node fan-out ``M``; the minimum fill ``m`` is ``max(2, M * 0.4)``,
        the classic Guttman recommendation.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max_entries = max_entries
        self._min_entries = max(2, int(max_entries * 0.4))
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def bulk_load(cls, items: Iterable[tuple[Rect, Any]],
                  max_entries: int = DEFAULT_MAX_ENTRIES) -> "RTree":
        """Build with Sort-Tile-Recursive packing.

        STR produces near-optimal leaves for static data, which is how the
        paper's pipeline uses its R-trees (NLCs are built once per query).
        """
        tree = cls(max_entries=max_entries)
        pairs = list(items)
        tree._size = len(pairs)
        if not pairs:
            return tree

        leaves: list[_Node] = []
        for group in _str_tiles(pairs, max_entries,
                                key=lambda pair: pair[0]):
            leaf = _Node(is_leaf=True)
            leaf.entries = group
            leaf.recompute_rect()
            leaves.append(leaf)

        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for group in _str_tiles(level, max_entries,
                                    key=lambda node: node.rect):
                parent = _Node(is_leaf=False)
                parent.entries = group
                parent.recompute_rect()
                parents.append(parent)
            level = parents
        tree._root = level[0]
        return tree

    def insert(self, rect: Rect, item: Any) -> None:
        """Insert one item (Guttman insertion with quadratic split)."""
        self._size += 1
        split = self._insert_into(self._root, rect, item)
        if split is not None:
            old_root = self._root
            new_root = _Node(is_leaf=False)
            new_root.entries = [old_root, split]
            new_root.recompute_rect()
            self._root = new_root

    def delete(self, rect: Rect, item: Any) -> bool:
        """Remove one item found by identity/equality under ``rect``.

        Returns True when the item was found.  Underfull nodes along the
        path are dissolved and their residents re-inserted (the standard
        condense-tree strategy).
        """
        path = self._find_leaf(self._root, rect, item, [])
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries = [(r, it) for (r, it) in leaf.entries
                        if not (it == item and r == rect)]
        self._size -= 1

        orphans: list = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self._min_entries:
                parent.entries.remove(node)
                orphans.append(node)
            else:
                node.recompute_rect()
        for node in path:
            node.recompute_rect()
        if not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0]
        for node in orphans:
            for entry in _iter_leaf_entries(node):
                self._size -= 1  # re-insert bumps it back
                self.insert(entry[0], entry[1])
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            h += 1
            node = node.entries[0]
        return h

    def search(self, query: Rect) -> list[Any]:
        """All items whose rectangle intersects ``query``."""
        out: list[Any] = []
        if self._root.rect is None:
            return out
        stack = [self._root]
        visits = 0
        while stack:
            node = stack.pop()
            visits += 1
            if node.rect is None or not node.rect.intersects(query):
                continue
            if node.is_leaf:
                for rect, item in node.entries:
                    if rect.intersects(query):
                        out.append(item)
            else:
                stack.extend(node.entries)
        _NODE_VISITS.add(visits)
        return out

    def search_point(self, x: float, y: float) -> list[Any]:
        """All items whose rectangle contains the point."""
        return self.search(Rect(x, y, x, y))

    def nearest(self, x: float, y: float, k: int = 1,
                max_distance: float = math.inf) -> list[tuple[float, Any]]:
        """The ``k`` items nearest to ``(x, y)`` by rectangle distance.

        Best-first search over node MBRs; for point data (degenerate
        rectangles) the returned distances are exact point distances.
        Returns ``(distance, item)`` pairs in ascending distance order.
        """
        if k < 1:
            raise ValueError("k must be positive")
        out: list[tuple[float, Any]] = []
        if self._root.rect is None:
            return out
        counter = 0  # tie-break heap entries; items may not be orderable
        heap: list[tuple[float, int, bool, Any]] = [
            (self._root.rect.min_distance_to_point(x, y), counter, False,
             self._root)
        ]
        visits = 0
        while heap:
            dist, _, is_item, payload = heapq.heappop(heap)
            if dist > max_distance:
                break
            if is_item:
                out.append((dist, payload))
                if len(out) == k:
                    break
                continue
            visits += 1
            node: _Node = payload
            if node.is_leaf:
                for rect, item in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (rect.min_distance_to_point(x, y), counter, True,
                         item))
            else:
                for child in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (child.rect.min_distance_to_point(x, y), counter,
                         False, child))
        _NODE_VISITS.add(visits)
        return out

    def nearest_batch(self, queries: np.ndarray,
                      k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Batched kNN over integer-indexed point items:
        ``(distances, indices)``, both ``(n_queries, k)``.

        The batched counterpart of :meth:`nearest` for the NLC workload,
        where items are site indices over degenerate rectangles.  One
        vectorised descent per tree node: queries travel as an index
        subset, a child is entered by every query whose current k-th
        distance bound admits the child's MBR, and leaves score all
        their entries against all arriving queries at once.  Requires
        ``1 <= k <= len(self)`` and items convertible to ``int64``
        (:class:`TypeError` otherwise).

        Distances match :meth:`nearest` (MBR distance, exact for point
        data); distance ties resolve to the *lowest item index* — the
        brute engine's rule — where the scalar heap ties on insertion
        order.  ``rtree_node_visits`` advances by the number of
        (query, node) entries — deterministic for a fixed tree, but a
        different total than the scalar best-first pop count.
        """
        if k < 1 or k > self._size:
            raise ValueError(
                f"k={k} out of range for {self._size} items")
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        n = queries.shape[0]
        best_d = np.full((n, k), np.inf, dtype=np.float64)
        best_i = np.full((n, k), self._size, dtype=np.int64)
        if n and self._root.rect is not None:
            subset = np.arange(n, dtype=np.int64)
            _NODE_VISITS.add(self._batch_nearest(
                self._root, queries, subset, k, best_d, best_i))
        return best_d, best_i

    def _batch_nearest(self, node: _Node, queries: np.ndarray,
                       subset: np.ndarray, k: int,
                       best_d: np.ndarray, best_i: np.ndarray) -> int:
        visits = subset.size
        qx = queries[subset, 0]
        qy = queries[subset, 1]
        if node.is_leaf:
            xmin = np.array([r.xmin for r, _ in node.entries],
                            dtype=np.float64)
            ymin = np.array([r.ymin for r, _ in node.entries],
                            dtype=np.float64)
            xmax = np.array([r.xmax for r, _ in node.entries],
                            dtype=np.float64)
            ymax = np.array([r.ymax for r, _ in node.entries],
                            dtype=np.float64)
            items = np.fromiter((item for _, item in node.entries),
                                dtype=np.int64, count=len(node.entries))
            # Clamped axis gaps, the Rect.min_distance_to_point form.
            dx = np.maximum(np.maximum(xmin[None, :] - qx[:, None], 0.0),
                            qx[:, None] - xmax[None, :])
            dy = np.maximum(np.maximum(ymin[None, :] - qy[:, None], 0.0),
                            qy[:, None] - ymax[None, :])
            ld = np.hypot(dx, dy)
            comb_d = np.concatenate([best_d[subset], ld], axis=1)
            comb_i = np.concatenate(
                [best_i[subset],
                 np.broadcast_to(items[None, :], ld.shape)], axis=1)
            order = np.lexsort((comb_i, comb_d), axis=1)[:, :k]
            rows = np.arange(subset.size, dtype=np.int64)[:, None]
            best_d[subset] = comb_d[rows, order]
            best_i[subset] = comb_i[rows, order]
            return visits
        for child in node.entries:
            rect = child.rect
            if rect is None:
                continue
            dx = np.maximum(np.maximum(rect.xmin - qx, 0.0), qx - rect.xmax)
            dy = np.maximum(np.maximum(rect.ymin - qy, 0.0), qy - rect.ymax)
            # Re-read each query's bound per child: earlier siblings may
            # have tightened it.
            go = np.hypot(dx, dy) <= best_d[subset, k - 1]
            sel = subset[go]
            if sel.size:
                visits += self._batch_nearest(child, queries, sel,
                                              k, best_d, best_i)
        return visits

    def items(self) -> Iterator[tuple[Rect, Any]]:
        """Iterate over all ``(rect, item)`` pairs."""
        yield from _iter_leaf_entries(self._root)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _insert_into(self, node: _Node, rect: Rect,
                     item: Any) -> _Node | None:
        """Insert recursively; returns a sibling node when ``node`` split."""
        if node.is_leaf:
            node.entries.append((rect, item))
        else:
            child = _choose_subtree(node, rect)
            split = self._insert_into(child, rect, item)
            if split is not None:
                node.entries.append(split)
        if len(node.entries) > self._max_entries:
            sibling = self._quadratic_split(node)
            node.recompute_rect()
            return sibling
        node.rect = rect if node.rect is None else node.rect.union(rect)
        return None

    def _quadratic_split(self, node: _Node) -> _Node:
        """Guttman's quadratic split: seed with the most wasteful pair, then
        greedily assign by enlargement preference."""
        entries = node.entries
        rect_of: Callable[[Any], Rect]
        if node.is_leaf:
            rect_of = lambda e: e[0]  # noqa: E731 - local accessor
        else:
            rect_of = lambda e: e.rect  # noqa: E731

        seed_a, seed_b = _pick_seeds(entries, rect_of)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = rect_of(entries[seed_a])
        rect_b = rect_of(entries[seed_b])
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while rest:
            # Force-assign when one group must take everything remaining to
            # reach the minimum fill.
            if len(group_a) + len(rest) == self._min_entries:
                group_a.extend(rest)
                for e in rest:
                    rect_a = rect_a.union(rect_of(e))
                rest = []
                break
            if len(group_b) + len(rest) == self._min_entries:
                group_b.extend(rest)
                for e in rest:
                    rect_b = rect_b.union(rect_of(e))
                rest = []
                break
            best_i, best_diff, best_da, best_db = -1, -1.0, 0.0, 0.0
            for i, e in enumerate(rest):
                r = rect_of(e)
                da = rect_a.enlargement(r)
                db = rect_b.enlargement(r)
                diff = abs(da - db)
                if diff > best_diff:
                    best_i, best_diff, best_da, best_db = i, diff, da, db
            e = rest.pop(best_i)
            r = rect_of(e)
            take_a = (best_da < best_db
                      or (best_da == best_db and rect_a.area <= rect_b.area))
            if take_a:
                group_a.append(e)
                rect_a = rect_a.union(r)
            else:
                group_b.append(e)
                rect_b = rect_b.union(r)

        node.entries = group_a
        sibling = _Node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        sibling.recompute_rect()
        node.recompute_rect()
        return sibling

    def _find_leaf(self, node: _Node, rect: Rect, item: Any,
                   path: list[_Node]) -> list[_Node] | None:
        path.append(node)
        if node.is_leaf:
            for r, it in node.entries:
                if it == item and r == rect:
                    return path
        else:
            for child in node.entries:
                if child.rect is not None and child.rect.intersects(rect):
                    found = self._find_leaf(child, rect, item, path)
                    if found is not None:
                        return found
        path.pop()
        return None


def _choose_subtree(node: _Node, rect: Rect) -> _Node:
    """Child needing the least enlargement (ties: smallest area)."""
    best = None
    best_key = (math.inf, math.inf)
    for child in node.entries:
        key = (child.rect.enlargement(rect), child.rect.area)
        if key < best_key:
            best_key = key
            best = child
    return best


def _pick_seeds(entries: list, rect_of: Callable[[Any], Rect]) -> tuple[int, int]:
    """The pair whose union wastes the most area (quadratic PickSeeds)."""
    best = (0, 1)
    worst_waste = -math.inf
    n = len(entries)
    for i in range(n):
        ri = rect_of(entries[i])
        for j in range(i + 1, n):
            rj = rect_of(entries[j])
            waste = ri.union(rj).area - ri.area - rj.area
            if waste > worst_waste:
                worst_waste = waste
                best = (i, j)
    return best


def _str_tiles(items: list, capacity: int, key: Callable[[Any], Rect]):
    """Group items into STR tiles of at most ``capacity`` (generator).

    Sort by centre-x, slice into vertical strips of ``ceil(sqrt(P))`` runs,
    sort each strip by centre-y and emit runs of ``capacity``.
    """
    n = len(items)
    node_count = math.ceil(n / capacity)
    strip_count = max(1, math.ceil(math.sqrt(node_count)))
    per_strip = strip_count * capacity

    by_x = sorted(items, key=lambda it: (key(it).xmin + key(it).xmax))
    for s in range(0, n, per_strip):
        strip = sorted(by_x[s:s + per_strip],
                       key=lambda it: (key(it).ymin + key(it).ymax))
        for t in range(0, len(strip), capacity):
            yield strip[t:t + capacity]


def _iter_leaf_entries(node: _Node) -> Iterator[tuple[Rect, Any]]:
    stack = [node]
    while stack:
        cur = stack.pop()
        if cur.is_leaf:
            yield from cur.entries
        else:
            stack.extend(cur.entries)
