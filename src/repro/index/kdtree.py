"""A 2-d tree over points, built from scratch.

NLC construction issues one kNN query per customer object against the
service sites (Section V-C of the paper budgets ``O(|O| log |P|)`` for this
step).  The k-d tree is the default engine for that workload; results are
cross-validated against brute force in the test suite, and a vectorised
brute-force path (:func:`repro.core.nlc.knn_distances`) is picked
automatically when ``|P|`` is small enough that numpy wins.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.obs import metrics as _obs_metrics

#: Deterministic work counter: nodes examined by kNN/radius queries.
#: Accumulated per call (one registry add per query) so the recursive
#: descent stays handle-free.
_NODE_VISITS = _obs_metrics.counter("kdtree_node_visits")


class _KDNode:
    __slots__ = ("axis", "split", "left", "right", "points", "indices")

    def __init__(self) -> None:
        self.axis = -1          # -1 marks a leaf
        self.split = 0.0
        self.left: _KDNode | None = None
        self.right: _KDNode | None = None
        self.points: list[tuple[float, float]] = []
        self.indices: list[int] = []


class KDTree:
    """Static k-d tree over 2-D points with k-nearest-neighbour queries.

    Parameters
    ----------
    points:
        Sequence of ``(x, y)`` pairs (or an ``(n, 2)`` numpy array).
    leaf_size:
        Leaves at or below this size are scanned linearly; 16 balances
        Python call overhead against pruning power.
    """

    def __init__(self, points: Sequence, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self._points = [(float(p[0]), float(p[1])) for p in points]
        self._leaf_size = leaf_size
        indices = list(range(len(self._points)))
        self._root = self._build(indices, depth=0) if indices else None

    def __len__(self) -> int:
        return len(self._points)

    def point(self, index: int) -> tuple[float, float]:
        """The stored point with the given original index."""
        return self._points[index]

    def query(self, x: float, y: float,
              k: int = 1) -> list[tuple[float, int]]:
        """The ``k`` nearest stored points to ``(x, y)``.

        Returns ``(distance, index)`` pairs sorted by ascending distance;
        fewer than ``k`` pairs when the tree is smaller than ``k``.
        Distance ties are broken by insertion index so results are
        deterministic — NLC radii must not depend on traversal order.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if self._root is None:
            return []
        # Max-heap of the best k candidates, as (-distance, -index).
        best: list[tuple[float, int]] = []
        _NODE_VISITS.add(self._search(self._root, x, y, k, best))
        out = sorted((-d, -i) for d, i in best)
        return [(d, i) for d, i in out]

    def query_radius(self, x: float, y: float, radius: float) -> list[int]:
        """Indices of all stored points within ``radius`` (closed ball)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: list[int] = []
        if self._root is None:
            return out
        r2 = radius * radius
        stack = [self._root]
        visits = 0
        while stack:
            node = stack.pop()
            visits += 1
            if node.axis < 0:
                for (px, py), idx in zip(node.points, node.indices):
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        out.append(idx)
                continue
            coord = x if node.axis == 0 else y
            # Prune in the same squared metric the leaf test uses: a
            # linear-space test (coord ± radius vs split) would discard
            # points whose squared distance underflows to within r²
            # (denormal axis gaps square to 0.0).  Float multiply is
            # monotone, so gap² ≤ r² is a sound necessary condition.
            gap = coord - node.split
            if gap <= 0.0 or gap * gap <= r2:
                stack.append(node.left)
            if gap >= 0.0 or gap * gap <= r2:
                stack.append(node.right)
        _NODE_VISITS.add(visits)
        out.sort()
        return out

    # ------------------------------------------------------------------ #

    def _build(self, indices: list[int], depth: int) -> _KDNode:
        node = _KDNode()
        if len(indices) <= self._leaf_size:
            node.indices = indices
            node.points = [self._points[i] for i in indices]
            return node
        axis = depth % 2
        indices.sort(key=lambda i: self._points[i][axis])
        mid = len(indices) // 2
        node.axis = axis
        node.split = self._points[indices[mid]][axis]
        node.left = self._build(indices[:mid], depth + 1)
        node.right = self._build(indices[mid:], depth + 1)
        return node

    def _search(self, node: _KDNode, x: float, y: float, k: int,
                best: list[tuple[float, int]]) -> int:
        """Recursive kNN descent; returns the number of nodes visited."""
        if node.axis < 0:
            for (px, py), idx in zip(node.points, node.indices):
                d = math.hypot(px - x, py - y)
                entry = (-d, -idx)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)
            return 1
        coord = x if node.axis == 0 else y
        near, far = ((node.left, node.right) if coord <= node.split
                     else (node.right, node.left))
        visits = 1 + self._search(near, x, y, k, best)
        plane_dist = abs(coord - node.split)
        if len(best) < k or plane_dist <= -best[0][0]:
            visits += self._search(far, x, y, k, best)
        return visits
