"""A 2-d tree over points, built from scratch.

NLC construction issues one kNN query per customer object against the
service sites (Section V-C of the paper budgets ``O(|O| log |P|)`` for this
step).  The k-d tree is the default engine for that workload; results are
cross-validated against brute force in the test suite, and a vectorised
brute-force path (:func:`repro.core.nlc.knn_distances`) is picked
automatically when ``|P|`` is small enough that numpy wins.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

import numpy as np

from repro.obs import metrics as _obs_metrics

#: Deterministic work counter: nodes examined by kNN/radius queries.
#: Accumulated per call (one registry add per query or batch) so the
#: recursive descent stays handle-free.
_NODE_VISITS = _obs_metrics.counter("kdtree_node_visits")


class _KDNode:
    __slots__ = ("axis", "split", "left", "right", "points", "indices",
                 "px_arr", "py_arr", "idx_arr")

    def __init__(self) -> None:
        self.axis = -1          # -1 marks a leaf
        self.split = 0.0
        self.left: _KDNode | None = None
        self.right: _KDNode | None = None
        self.points: list[tuple[float, float]] = []
        self.indices: list[int] = []
        # Leaf contents as arrays, for the batched descent.
        self.px_arr: np.ndarray | None = None
        self.py_arr: np.ndarray | None = None
        self.idx_arr: np.ndarray | None = None


class KDTree:
    """Static k-d tree over 2-D points with k-nearest-neighbour queries.

    Parameters
    ----------
    points:
        Sequence of ``(x, y)`` pairs (or an ``(n, 2)`` numpy array).
    leaf_size:
        Leaves at or below this size are scanned linearly; 16 balances
        Python call overhead against pruning power.
    """

    def __init__(self, points: Sequence, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self._points = [(float(p[0]), float(p[1])) for p in points]
        self._leaf_size = leaf_size
        indices = list(range(len(self._points)))
        self._root = self._build(indices, depth=0) if indices else None

    def __len__(self) -> int:
        return len(self._points)

    def point(self, index: int) -> tuple[float, float]:
        """The stored point with the given original index."""
        return self._points[index]

    def query(self, x: float, y: float,
              k: int = 1) -> list[tuple[float, int]]:
        """The ``k`` nearest stored points to ``(x, y)``.

        Returns ``(distance, index)`` pairs sorted by ascending distance;
        fewer than ``k`` pairs when the tree is smaller than ``k``.
        Distance ties are broken by insertion index so results are
        deterministic — NLC radii must not depend on traversal order.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if self._root is None:
            return []
        # Max-heap of the best k candidates, as (-distance, -index).
        best: list[tuple[float, int]] = []
        _NODE_VISITS.add(self._search(self._root, x, y, k, best))
        out = sorted((-d, -i) for d, i in best)
        return [(d, i) for d, i in out]

    def query_batch(self, queries: np.ndarray,
                    k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Batched kNN: ``(distances, indices)``, both ``(n_queries, k)``.

        One vectorised descent per tree node instead of one Python
        recursion per query: queries are carried down as an index subset
        and partitioned at every internal node, leaves score all their
        resident points against all arriving queries at once.  Requires
        ``1 <= k <= len(self)``.

        Per query the visited node set is exactly the scalar
        :meth:`query`'s — the far-subtree bound is evaluated *after* the
        near subtree completes, as in the scalar descent, and the subset
        recursions are row-disjoint — so ``kdtree_node_visits`` advances
        by the same total.  Distance ties resolve to the lowest stored
        index, also matching :meth:`query`.
        """
        if k < 1 or k > len(self._points):
            raise ValueError(
                f"k={k} out of range for {len(self._points)} points")
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        n = queries.shape[0]
        best_d = np.full((n, k), np.inf, dtype=np.float64)
        best_i = np.full((n, k), len(self._points), dtype=np.int64)
        if n and self._root is not None:
            subset = np.arange(n, dtype=np.int64)
            _NODE_VISITS.add(self._batch_search(
                self._root, queries, subset, k, best_d, best_i))
        return best_d, best_i

    def query_radius(self, x: float, y: float, radius: float) -> list[int]:
        """Indices of all stored points within ``radius`` (closed ball)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: list[int] = []
        if self._root is None:
            return out
        r2 = radius * radius
        stack = [self._root]
        visits = 0
        while stack:
            node = stack.pop()
            visits += 1
            if node.axis < 0:
                for (px, py), idx in zip(node.points, node.indices):
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        out.append(idx)
                continue
            coord = x if node.axis == 0 else y
            # Prune in the same squared metric the leaf test uses: a
            # linear-space test (coord ± radius vs split) would discard
            # points whose squared distance underflows to within r²
            # (denormal axis gaps square to 0.0).  Float multiply is
            # monotone, so gap² ≤ r² is a sound necessary condition.
            gap = coord - node.split
            if gap <= 0.0 or gap * gap <= r2:
                stack.append(node.left)
            if gap >= 0.0 or gap * gap <= r2:
                stack.append(node.right)
        _NODE_VISITS.add(visits)
        out.sort()
        return out

    # ------------------------------------------------------------------ #

    def _build(self, indices: list[int], depth: int) -> _KDNode:
        node = _KDNode()
        if len(indices) <= self._leaf_size:
            node.indices = indices
            node.points = [self._points[i] for i in indices]
            node.px_arr = np.array([p[0] for p in node.points],
                                   dtype=np.float64)
            node.py_arr = np.array([p[1] for p in node.points],
                                   dtype=np.float64)
            node.idx_arr = np.array(indices, dtype=np.int64)
            return node
        axis = depth % 2
        indices.sort(key=lambda i: self._points[i][axis])
        mid = len(indices) // 2
        node.axis = axis
        node.split = self._points[indices[mid]][axis]
        node.left = self._build(indices[:mid], depth + 1)
        node.right = self._build(indices[mid:], depth + 1)
        return node

    def _search(self, node: _KDNode, x: float, y: float, k: int,
                best: list[tuple[float, int]]) -> int:
        """Recursive kNN descent; returns the number of nodes visited."""
        if node.axis < 0:
            for (px, py), idx in zip(node.points, node.indices):
                d = math.hypot(px - x, py - y)
                entry = (-d, -idx)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)
            return 1
        coord = x if node.axis == 0 else y
        near, far = ((node.left, node.right) if coord <= node.split
                     else (node.right, node.left))
        visits = 1 + self._search(near, x, y, k, best)
        plane_dist = abs(coord - node.split)
        if len(best) < k or plane_dist <= -best[0][0]:
            visits += self._search(far, x, y, k, best)
        return visits

    def _batch_search(self, node: _KDNode, queries: np.ndarray,
                      subset: np.ndarray, k: int,
                      best_d: np.ndarray, best_i: np.ndarray) -> int:
        """Vectorised kNN descent over a query subset; returns node
        visits (``subset.size`` per node entered, one visit per arriving
        query — the scalar count)."""
        if node.axis < 0:
            ld = np.hypot(queries[subset, 0:1] - node.px_arr[None, :],
                          queries[subset, 1:2] - node.py_arr[None, :])
            comb_d = np.concatenate([best_d[subset], ld], axis=1)
            comb_i = np.concatenate(
                [best_i[subset],
                 np.broadcast_to(node.idx_arr[None, :], ld.shape)], axis=1)
            # Ascending (distance, index): same tie-break as the scalar
            # (-d, -idx) max-heap.
            order = np.lexsort((comb_i, comb_d), axis=1)[:, :k]
            rows = np.arange(subset.size, dtype=np.int64)[:, None]
            best_d[subset] = comb_d[rows, order]
            best_i[subset] = comb_i[rows, order]
            return subset.size
        visits = subset.size
        coord = queries[subset, node.axis]
        near_left = coord <= node.split
        sel_left = subset[near_left]
        sel_right = subset[~near_left]
        if sel_left.size:
            visits += self._batch_search(node.left, queries, sel_left,
                                         k, best_d, best_i)
        if sel_right.size:
            visits += self._batch_search(node.right, queries, sel_right,
                                         k, best_d, best_i)
        # Far subtree, with each query's bound as it stands after its
        # own near subtree (unfilled slots are +inf, so the bound also
        # admits every query that has not seen k points yet).
        go = np.abs(coord - node.split) <= best_d[subset, k - 1]
        far_right = subset[near_left & go]
        if far_right.size:
            visits += self._batch_search(node.right, queries, far_right,
                                         k, best_d, best_i)
        far_left = subset[~near_left & go]
        if far_left.size:
            visits += self._batch_search(node.left, queries, far_left,
                                         k, best_d, best_i)
        return visits
