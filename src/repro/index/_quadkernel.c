/* Compiled hot kernel for MaxFirst's batched quadrant split.
 *
 * Classifies every candidate disk against the four children of one
 * rectangle split at (px, py) in a single pass.  The four children share
 * axis intervals ([xmin,px] / [px,xmax] on x, [ymin,py] / [py,ymax] on
 * y), so only four near/far lane distances are computed per candidate
 * instead of eight — half the floating-point work of four independent
 * rectangle classifications, with no numpy temporaries.
 *
 * Bit-identity contract with CircleSet.classify_rect (the scalar numpy
 * kernel): every arithmetic operation below mirrors the numpy expression
 * with the same operands.  IEEE-754 double add/sub/mul/compare are
 * correctly rounded in both C (SSE2 scalar math) and numpy, and max is
 * exactly associative/commutative for the NaN-free finite inputs used
 * here, so the predicates evaluate to exactly the same booleans.  Score
 * sums are NOT computed here — the caller reduces the compacted score
 * runs with numpy so pairwise-summation order matches the scalar path.
 * Build with -ffp-contract=off: fusing mul+add into FMA would change
 * rounding and break the contract.
 *
 * Child order matches Rect.split_at: ll, lr, ul, ur — child c uses
 * x-lane (c & 1) and y-lane (c >> 1).
 *
 * Output layout: per-child runs live in row c of the (4, stride)
 * scratch matrices, compacted in candidate order; counts[c] /
 * ccounts[c] give the run lengths.
 */

#include <stdint.h>

static inline double dmax(double a, double b) { return a > b ? a : b; }

void classify_quad_split(
    const double *cx, const double *cy,
    const double *r_in2, const double *r_out2,
    const double *scores,
    const int64_t *cand, int64_t n,
    double xmin, double ymin, double xmax, double ymax,
    double px, double py,
    int64_t stride,
    int64_t *idx_out,   /* (4, stride) int64  : Q.I indices           */
    uint8_t *mask_out,  /* (4, stride) uint8  : containing mask       */
    double *sc_out,     /* (4, stride) double : scores over Q.I       */
    double *csc_out,    /* (4, stride) double : scores over Q.C       */
    int64_t *counts,    /* (4) |Q.I| per child                        */
    int64_t *ccounts)   /* (4) |Q.C| per child                        */
{
    int64_t h[4] = {0, 0, 0, 0};
    int64_t ch[4] = {0, 0, 0, 0};
    double nx2[2], ny2[2], fx2[2], fy2[2];
    for (int64_t i = 0; i < n; i++) {
        const int64_t j = cand[i];
        const double x = cx[j];
        const double y = cy[j];
        const double ri2 = r_in2[j];
        /* near lanes: maximum(maximum(lo - c, 0), c - hi), squared */
        const double nxl = dmax(dmax(xmin - x, 0.0), x - px);
        const double nxh = dmax(dmax(px - x, 0.0), x - xmax);
        const double nyl = dmax(dmax(ymin - y, 0.0), y - py);
        const double nyh = dmax(dmax(py - y, 0.0), y - ymax);
        nx2[0] = nxl * nxl; nx2[1] = nxh * nxh;
        ny2[0] = nyl * nyl; ny2[1] = nyh * nyh;
        if (nx2[0] + ny2[0] >= ri2 && nx2[1] + ny2[0] >= ri2 &&
            nx2[0] + ny2[1] >= ri2 && nx2[1] + ny2[1] >= ri2)
            continue;  /* misses all four children */
        /* far lanes: maximum(c - lo, hi - c), squared */
        const double fxl = dmax(x - xmin, px - x);
        const double fxh = dmax(x - px, xmax - x);
        const double fyl = dmax(y - ymin, py - y);
        const double fyh = dmax(y - py, ymax - y);
        fx2[0] = fxl * fxl; fx2[1] = fxh * fxh;
        fy2[0] = fyl * fyl; fy2[1] = fyh * fyh;
        const double ro2 = r_out2[j];
        const double sc = scores[j];
        for (int c = 0; c < 4; c++) {
            if (nx2[c & 1] + ny2[c >> 1] < ri2) {
                const int64_t o = c * stride + h[c];
                const int contain = fx2[c & 1] + fy2[c >> 1] <= ro2;
                idx_out[o] = j;
                mask_out[o] = (uint8_t)contain;
                sc_out[o] = sc;
                h[c]++;
                if (contain)
                    csc_out[c * stride + ch[c]++] = sc;
            }
        }
    }
    for (int c = 0; c < 4; c++) {
        counts[c] = h[c];
        ccounts[c] = ch[c];
    }
}
