/* Compiled hot kernel for MaxFirst's batched quadrant split.
 *
 * Classifies every candidate disk against the four children of one
 * rectangle split at (px, py) in a single pass.  The four children share
 * axis intervals ([xmin,px] / [px,xmax] on x, [ymin,py] / [py,ymax] on
 * y), so only four near/far lane distances are computed per candidate
 * instead of eight — half the floating-point work of four independent
 * rectangle classifications, with no numpy temporaries.
 *
 * Bit-identity contract with CircleSet.classify_rect (the scalar numpy
 * kernel): every arithmetic operation below mirrors the numpy expression
 * with the same operands.  IEEE-754 double add/sub/mul/compare are
 * correctly rounded in both C (SSE2 scalar math) and numpy, and max is
 * exactly associative/commutative for the NaN-free finite inputs used
 * here, so the predicates evaluate to exactly the same booleans.  Score
 * sums are NOT computed here — the caller reduces the compacted score
 * runs with numpy so pairwise-summation order matches the scalar path.
 * Build with -ffp-contract=off: fusing mul+add into FMA would change
 * rounding and break the contract.
 *
 * Child order matches Rect.split_at: ll, lr, ul, ur — child c uses
 * x-lane (c & 1) and y-lane (c >> 1).
 *
 * Output layout: per-child runs live in row c of the (4, stride)
 * scratch matrices, compacted in candidate order; counts[c] /
 * ccounts[c] give the run lengths.
 */

#include <stdint.h>
#include <stdlib.h>
#include <math.h>

static inline double dmax(double a, double b) { return a > b ? a : b; }

void classify_quad_split(
    const double *cx, const double *cy,
    const double *r_in2, const double *r_out2,
    const double *scores,
    const int64_t *cand, int64_t n,
    double xmin, double ymin, double xmax, double ymax,
    double px, double py,
    int64_t stride,
    int64_t *idx_out,   /* (4, stride) int64  : Q.I indices           */
    uint8_t *mask_out,  /* (4, stride) uint8  : containing mask       */
    double *sc_out,     /* (4, stride) double : scores over Q.I       */
    double *csc_out,    /* (4, stride) double : scores over Q.C       */
    int64_t *counts,    /* (4) |Q.I| per child                        */
    int64_t *ccounts)   /* (4) |Q.C| per child                        */
{
    int64_t h[4] = {0, 0, 0, 0};
    int64_t ch[4] = {0, 0, 0, 0};
    double nx2[2], ny2[2], fx2[2], fy2[2];
    for (int64_t i = 0; i < n; i++) {
        const int64_t j = cand[i];
        const double x = cx[j];
        const double y = cy[j];
        const double ri2 = r_in2[j];
        /* near lanes: maximum(maximum(lo - c, 0), c - hi), squared */
        const double nxl = dmax(dmax(xmin - x, 0.0), x - px);
        const double nxh = dmax(dmax(px - x, 0.0), x - xmax);
        const double nyl = dmax(dmax(ymin - y, 0.0), y - py);
        const double nyh = dmax(dmax(py - y, 0.0), y - ymax);
        nx2[0] = nxl * nxl; nx2[1] = nxh * nxh;
        ny2[0] = nyl * nyl; ny2[1] = nyh * nyh;
        if (nx2[0] + ny2[0] >= ri2 && nx2[1] + ny2[0] >= ri2 &&
            nx2[0] + ny2[1] >= ri2 && nx2[1] + ny2[1] >= ri2)
            continue;  /* misses all four children */
        /* far lanes: maximum(c - lo, hi - c), squared */
        const double fxl = dmax(x - xmin, px - x);
        const double fxh = dmax(x - px, xmax - x);
        const double fyl = dmax(y - ymin, py - y);
        const double fyh = dmax(y - py, ymax - y);
        fx2[0] = fxl * fxl; fx2[1] = fxh * fxh;
        fy2[0] = fyl * fyl; fy2[1] = fyh * fyh;
        const double ro2 = r_out2[j];
        const double sc = scores[j];
        for (int c = 0; c < 4; c++) {
            if (nx2[c & 1] + ny2[c >> 1] < ri2) {
                const int64_t o = c * stride + h[c];
                const int contain = fx2[c & 1] + fy2[c >> 1] <= ro2;
                idx_out[o] = j;
                mask_out[o] = (uint8_t)contain;
                sc_out[o] = sc;
                h[c]++;
                if (contain)
                    csc_out[c * stride + ch[c]++] = sc;
            }
        }
    }
    for (int c = 0; c < 4; c++) {
        counts[c] = h[c];
        ccounts[c] = ch[c];
    }
}

/* Compiled brute-force kNN for NLC construction (knn_chunked fast path).
 *
 * Bit-identity contract with the numpy fallback in repro.core.nlc:
 * per pair the squared distance is dx*dx + dy*dy with dx = qx - px,
 * dy = qy - py — the same operand grouping as the numpy broadcast
 * expression, each multiply and add rounded separately (build with
 * -ffp-contract=off).  Selection keeps the k smallest by the strict
 * lexicographic (d2, index) order, so distance ties always resolve to
 * the lowest site index — the documented deterministic tie-break of
 * knn_chunked.  Output distances are sqrt(d2); C's sqrt and np.sqrt are
 * both IEEE-754 correctly rounded, so they agree bit for bit.
 *
 * Selection is a bounded max-heap of k (d2, index) entries per query:
 * O(n log k) per query, no (chunk x n_points) temporary.  Returns 0 on
 * success, -1 on invalid k or allocation failure (caller validates k,
 * so -1 in practice means OOM and the caller falls back to numpy).
 */

static inline int knn_less(double da, int64_t ia, double db, int64_t ib)
{
    return da < db || (da == db && ia < ib);
}

static void knn_sift_down(double *hd, int64_t *hi,
                          int64_t root, int64_t size)
{
    for (;;) {
        int64_t child = 2 * root + 1;
        if (child >= size)
            break;
        if (child + 1 < size &&
            knn_less(hd[child], hi[child], hd[child + 1], hi[child + 1]))
            child++;
        if (knn_less(hd[root], hi[root], hd[child], hi[child])) {
            double td = hd[root]; hd[root] = hd[child]; hd[child] = td;
            int64_t ti = hi[root]; hi[root] = hi[child]; hi[child] = ti;
            root = child;
        } else {
            break;
        }
    }
}

int knn_brute(
    const double *queries,  /* (n_queries, 2) interleaved x,y */
    int64_t n_queries,
    const double *points,   /* (n_points, 2) interleaved x,y  */
    int64_t n_points,
    int64_t k,
    double *dist_out,       /* (n_queries, k) sorted ascending */
    int64_t *idx_out)       /* (n_queries, k) matching indices */
{
    if (k < 1 || k > n_points)
        return -1;
    double *hd = malloc((size_t)k * sizeof(double));
    int64_t *hi = malloc((size_t)k * sizeof(int64_t));
    if (hd == NULL || hi == NULL) {
        free(hd);
        free(hi);
        return -1;
    }
    for (int64_t q = 0; q < n_queries; q++) {
        const double qx = queries[2 * q];
        const double qy = queries[2 * q + 1];
        int64_t m = 0;
        for (int64_t j = 0; j < n_points; j++) {
            const double dx = qx - points[2 * j];
            const double dy = qy - points[2 * j + 1];
            const double d2 = dx * dx + dy * dy;
            if (m < k) {
                int64_t c = m++;
                hd[c] = d2;
                hi[c] = j;
                while (c > 0) {  /* sift up into the max-heap */
                    int64_t p = (c - 1) >> 1;
                    if (!knn_less(hd[p], hi[p], hd[c], hi[c]))
                        break;
                    double td = hd[p]; hd[p] = hd[c]; hd[c] = td;
                    int64_t ti = hi[p]; hi[p] = hi[c]; hi[c] = ti;
                    c = p;
                }
            } else if (knn_less(d2, j, hd[0], hi[0])) {
                hd[0] = d2;
                hi[0] = j;
                knn_sift_down(hd, hi, 0, k);
            }
        }
        /* heapsort: repeatedly move the current max to the tail, so the
         * scratch arrays end up ascending by (d2, index). */
        for (int64_t c = m - 1; c > 0; c--) {
            double td = hd[0]; hd[0] = hd[c]; hd[c] = td;
            int64_t ti = hi[0]; hi[0] = hi[c]; hi[c] = ti;
            knn_sift_down(hd, hi, 0, c);
        }
        for (int64_t c = 0; c < m; c++) {
            dist_out[q * k + c] = sqrt(hd[c]);
            idx_out[q * k + c] = hi[c];
        }
    }
    free(hd);
    free(hi);
    return 0;
}
