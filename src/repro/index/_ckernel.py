"""Build-and-load shim for the compiled quadrant-split kernel.

``_quadkernel.c`` (next to this module) is compiled on first use with the
system C compiler into a shared library cached under a private per-user
cache directory, keyed by a hash of the source and compile flags, then
loaded through :mod:`ctypes`.  Everything is best-effort: an *expected*
failure — no compiler, unwritable cache dir, unsupported platform, a
stale or unloadable library — emits a :class:`RuntimeWarning` naming the
fallback and degrades to ``None``, and callers fall back to the
pure-numpy batched kernel, which computes identical results.  Unexpected
exception types propagate: a silent blanket ``except`` here once hid
real kernel-load bugs behind a quiet 2–3x slowdown (rule ``RPR003`` of
:mod:`repro.analysis`).

The cache lives under ``$XDG_CACHE_HOME/repro`` (``~/.cache/repro``),
falling back to a uid-suffixed temp subdirectory, created mode 0700 and
verified (owned by us, not group/other-writable, not a symlink) before
anything is loaded from it: the library path is predictable, so on a
shared machine a world-writable cache would let another local user plant
a malicious library for this process to execute.

Set ``REPRO_NO_CKERNEL=1`` to force the numpy fallback (used by tests to
cover both paths).

``-ffp-contract=off`` is mandatory: the kernel's bit-identity contract
with the numpy scalar kernel (see the header comment in ``_quadkernel.c``)
requires every multiply and add to round separately, exactly as numpy's
ufunc loops do.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import stat
import subprocess
import sys
import tempfile
import warnings

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "_quadkernel.c")
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

_cached: tuple[object] | None = None  # 1-tuple so None is cacheable


def _uid() -> int | None:
    getuid = getattr(os, "getuid", None)  # absent on Windows
    return getuid() if getuid is not None else None


def _owned_private(path: str, want_dir: bool) -> bool:
    """True when ``path`` is ours alone: a regular file (or directory),
    not a symlink, owned by the current user, group/other-unwritable."""
    try:
        st = os.lstat(path)
    except OSError:
        return False
    if want_dir:
        if not stat.S_ISDIR(st.st_mode):
            return False
        if st.st_mode & 0o077:
            return False
    else:
        if not stat.S_ISREG(st.st_mode):
            return False
        if st.st_mode & 0o022:
            return False
    uid = _uid()
    return uid is None or st.st_uid == uid


def _cache_dir() -> str | None:
    """The per-user kernel cache directory, created 0700 and verified."""
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        home = os.path.expanduser("~")
        base = os.path.join(home, ".cache") if home != "~" else None
    if base:
        path = os.path.join(base, "repro", "ckernel")
    else:
        uid = _uid()
        suffix = f"u{uid}" if uid is not None else "u"
        path = os.path.join(tempfile.gettempdir(),
                            f"repro-ckernel-{suffix}")
    try:
        os.makedirs(path, mode=0o700, exist_ok=True)
    except OSError:
        return None
    # makedirs does not re-apply the mode to a pre-existing directory:
    # verify rather than trust (and refuse a hijacked/shared one).
    return path if _owned_private(path, want_dir=True) else None


def _build(source_path: str) -> str | None:
    """Compile the kernel if needed; return the shared-library path."""
    try:
        with open(source_path, "rb") as fh:
            src = fh.read()
    except OSError:
        return None
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    tag = hashlib.sha256(src + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    lib_path = os.path.join(
        cache_dir,
        f"repro_quadkernel_{tag}_py{sys.version_info[0]}{sys.version_info[1]}.so")
    if _owned_private(lib_path, want_dir=False):
        return lib_path
    compiler = os.environ.get("CC") or "cc"
    # Compile to a private temp name inside the (0700, same-filesystem)
    # cache dir, then atomically publish, so concurrent builders never
    # load a half-written library.
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
    os.close(fd)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp, source_path],
            check=True, capture_output=True, timeout=120)
        os.chmod(tmp, 0o700)
        os.replace(tmp, lib_path)
    # OSError: compiler missing / cache dir vanished mid-build;
    # SubprocessError: compile failed or timed out.  Anything else is a
    # bug and must surface, not silently slow every future run.
    except (OSError, subprocess.SubprocessError) as exc:
        # repro: fallback(kernel build failure degrades to the bit-identical numpy batch kernel)
        warnings.warn(
            f"quad-split kernel build failed ({exc!r}); falling back to "
            "the pure-numpy batched kernel (identical results, slower)",
            RuntimeWarning, stacklevel=2)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    return lib_path if _owned_private(lib_path, want_dir=False) else None


def load_quad_kernel():
    """The compiled ``classify_quad_split`` entry point, or ``None``.

    The result (including a failed load) is cached for the process.
    """
    global _cached
    if _cached is not None:
        return _cached[0]
    fn = None
    if not os.environ.get("REPRO_NO_CKERNEL"):
        lib_path = _build(_SOURCE)
        if lib_path is not None:
            try:
                lib = ctypes.CDLL(lib_path)
                fn = lib.classify_quad_split
                c_d = ctypes.c_double
                c_i64 = ctypes.c_int64
                ptr = ctypes.c_void_p
                fn.restype = None
                fn.argtypes = [
                    ptr, ptr, ptr, ptr, ptr,       # cx cy r_in2 r_out2 sc
                    ptr, c_i64,                    # cand, n
                    c_d, c_d, c_d, c_d, c_d, c_d,  # rect + split point
                    c_i64,                         # stride
                    ptr, ptr, ptr, ptr,            # idx mask sc csc out
                    ptr, ptr,                      # counts ccounts
                ]
            # OSError: CDLL could not load the library; AttributeError:
            # the expected symbol is missing (stale/foreign .so).
            except (OSError, AttributeError) as exc:
                # repro: fallback(kernel load failure degrades to the bit-identical numpy batch kernel)
                warnings.warn(
                    f"quad-split kernel load failed ({exc!r}); falling "
                    "back to the pure-numpy batched kernel (identical "
                    "results, slower)",
                    RuntimeWarning, stacklevel=2)
                fn = None
    _cached = (fn,)
    return fn
