"""Build-and-load shim for the compiled kernels (quad split + kNN).

``_quadkernel.c`` (next to this module) is compiled on first use with the
system C compiler into a shared library cached under a private per-user
cache directory, keyed by a hash of the source and compile flags, then
loaded through :mod:`ctypes`.  The library carries every compiled entry
point — ``classify_quad_split`` for Phase I rectangle classification and
``knn_brute`` for NLC construction — and is built and loaded exactly
once per process; :func:`load_quad_kernel` and :func:`load_knn_kernel`
hand out the individually configured functions.  Everything is
best-effort: an *expected* failure — no compiler, unwritable cache dir,
unsupported platform, a stale or unloadable library — emits a
:class:`RuntimeWarning` naming the fallback and degrades to ``None``,
and callers fall back to the pure-numpy batched kernels, which compute
identical results.  Unexpected exception types propagate: a silent
blanket ``except`` here once hid real kernel-load bugs behind a quiet
2–3x slowdown (rule ``RPR003`` of :mod:`repro.analysis`).

The cache lives under ``$XDG_CACHE_HOME/repro`` (``~/.cache/repro``),
falling back to a uid-suffixed temp subdirectory, created mode 0700 and
verified (owned by us, not group/other-writable, not a symlink) before
anything is loaded from it: the library path is predictable, so on a
shared machine a world-writable cache would let another local user plant
a malicious library for this process to execute.

Set ``REPRO_NO_CKERNEL=1`` to force the numpy fallback (used by tests to
cover both paths).

``-ffp-contract=off`` is mandatory: the kernels' bit-identity contract
with the numpy kernels (see the header comments in ``_quadkernel.c``)
requires every multiply and add to round separately, exactly as numpy's
ufunc loops do.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import stat
import subprocess
import sys
import tempfile
import warnings

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "_quadkernel.c")
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

# Per-entry-point memo ({symbol: ctypes fn or None}); None = not loaded
# yet.  A failed build/load memoises {symbol: None} for every entry so
# the fallback warning fires at most once per process.
_cached: dict[str, object | None] | None = None


def _uid() -> int | None:
    getuid = getattr(os, "getuid", None)  # absent on Windows
    return getuid() if getuid is not None else None


def _owned_private(path: str, want_dir: bool) -> bool:
    """True when ``path`` is ours alone: a regular file (or directory),
    not a symlink, owned by the current user, group/other-unwritable."""
    try:
        st = os.lstat(path)
    except OSError:
        return False
    if want_dir:
        if not stat.S_ISDIR(st.st_mode):
            return False
        if st.st_mode & 0o077:
            return False
    else:
        if not stat.S_ISREG(st.st_mode):
            return False
        if st.st_mode & 0o022:
            return False
    uid = _uid()
    return uid is None or st.st_uid == uid


def _cache_dir() -> str | None:
    """The per-user kernel cache directory, created 0700 and verified."""
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        home = os.path.expanduser("~")
        base = os.path.join(home, ".cache") if home != "~" else None
    if base:
        path = os.path.join(base, "repro", "ckernel")
    else:
        uid = _uid()
        suffix = f"u{uid}" if uid is not None else "u"
        path = os.path.join(tempfile.gettempdir(),
                            f"repro-ckernel-{suffix}")
    try:
        os.makedirs(path, mode=0o700, exist_ok=True)
    except OSError:
        return None
    # makedirs does not re-apply the mode to a pre-existing directory:
    # verify rather than trust (and refuse a hijacked/shared one).
    return path if _owned_private(path, want_dir=True) else None


def _build(source_path: str) -> str | None:
    """Compile the kernel if needed; return the shared-library path."""
    try:
        with open(source_path, "rb") as fh:
            src = fh.read()
    except OSError:
        return None
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    tag = hashlib.sha256(src + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    lib_path = os.path.join(
        cache_dir,
        f"repro_quadkernel_{tag}_py{sys.version_info[0]}{sys.version_info[1]}.so")
    if _owned_private(lib_path, want_dir=False):
        return lib_path
    compiler = os.environ.get("CC") or "cc"
    # Compile to a private temp name inside the (0700, same-filesystem)
    # cache dir, then atomically publish, so concurrent builders never
    # load a half-written library.
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
    os.close(fd)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp, source_path],
            check=True, capture_output=True, timeout=120)
        os.chmod(tmp, 0o700)
        os.replace(tmp, lib_path)
    # OSError: compiler missing / cache dir vanished mid-build;
    # SubprocessError: compile failed or timed out.  Anything else is a
    # bug and must surface, not silently slow every future run.
    except (OSError, subprocess.SubprocessError) as exc:
        # repro: fallback(kernel build failure degrades to the bit-identical numpy batch kernel)
        warnings.warn(
            f"quad-split kernel build failed ({exc!r}); falling back to "
            "the pure-numpy batched kernel (identical results, slower)",
            RuntimeWarning, stacklevel=2)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    return lib_path if _owned_private(lib_path, want_dir=False) else None


def _configure_quad(fn) -> None:
    """ctypes signature for ``classify_quad_split``."""
    c_d = ctypes.c_double
    c_i64 = ctypes.c_int64
    ptr = ctypes.c_void_p
    fn.restype = None
    fn.argtypes = [
        ptr, ptr, ptr, ptr, ptr,       # cx cy r_in2 r_out2 sc
        ptr, c_i64,                    # cand, n
        c_d, c_d, c_d, c_d, c_d, c_d,  # rect + split point
        c_i64,                         # stride
        ptr, ptr, ptr, ptr,            # idx mask sc csc out
        ptr, ptr,                      # counts ccounts
    ]


def _configure_knn(fn) -> None:
    """ctypes signature for ``knn_brute``."""
    c_i64 = ctypes.c_int64
    ptr = ctypes.c_void_p
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ptr, c_i64,  # queries (n, 2), n_queries
        ptr, c_i64,  # points (m, 2), n_points
        c_i64,       # k
        ptr, ptr,    # dist_out (n, k), idx_out (n, k)
    ]


_ENTRY_POINTS = {
    "classify_quad_split": _configure_quad,
    "knn_brute": _configure_knn,
}


def _load_entries() -> dict[str, object | None]:
    """Build + load the library once; configure every entry point."""
    fns: dict[str, object | None] = dict.fromkeys(_ENTRY_POINTS)
    if os.environ.get("REPRO_NO_CKERNEL"):
        return fns
    lib_path = _build(_SOURCE)
    if lib_path is None:
        return fns
    try:
        lib = ctypes.CDLL(lib_path)
        loaded: dict[str, object | None] = {}
        for name, configure in _ENTRY_POINTS.items():
            fn = getattr(lib, name)
            configure(fn)
            loaded[name] = fn
    # OSError: CDLL could not load the library; AttributeError: an
    # expected symbol is missing (stale/foreign .so).  All entry points
    # degrade together — a library missing one symbol is not trusted
    # for the others either.
    except (OSError, AttributeError) as exc:
        # repro: fallback(kernel load failure degrades to the bit-identical numpy batch kernels)
        warnings.warn(
            f"compiled kernel load failed ({exc!r}); falling back to "
            "the pure-numpy batched kernels (identical results, slower)",
            RuntimeWarning, stacklevel=3)
        return fns
    return loaded


def _entries() -> dict[str, object | None]:
    global _cached
    if _cached is None:
        # repro: worker-state(per-process compiled-kernel handle cache:
        # every process loads the same .so (or the same numpy fallback)
        # from the same source hash, so a cache hit and a fresh load
        # answer identically — caching only skips dlopen/compile)
        _cached = _load_entries()
    return _cached


def load_quad_kernel():
    """The compiled ``classify_quad_split`` entry point, or ``None``.

    The result (including a failed load) is cached for the process.
    """
    return _entries()["classify_quad_split"]


def load_knn_kernel():
    """The compiled ``knn_brute`` entry point, or ``None``.

    The result (including a failed load) is cached for the process.
    """
    return _entries()["knn_brute"]
