"""Spatial index substrates, implemented from scratch.

The paper's MaxFirst uses an R-tree over the NLCs to answer the range
queries that compute ``Q.I`` (and an R-tree / nearest-neighbour index over
the service sites to build the NLCs in the first place).  This package
provides:

* :class:`~repro.index.rtree.RTree` — STR bulk-loaded R-tree with quadratic
  split insertion, rectangle range queries and best-first kNN.
* :class:`~repro.index.kdtree.KDTree` — point k-d tree, the default engine
  for the many-queries/few-sites kNN workload of NLC construction.
* :class:`~repro.index.grid.UniformGrid` — bucket grid over bounding boxes,
  used by MaxOverlap's intersection-pair enumeration.
* :class:`~repro.index.circleset.CircleSet` — a structure-of-arrays store
  of NLC disks with vectorised rectangle predicates; the performance
  substrate that makes pure-Python MaxFirst practical.
"""

from repro.index.circleset import CircleSet
from repro.index.grid import UniformGrid
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree

__all__ = ["CircleSet", "KDTree", "RTree", "UniformGrid"]
