"""A uniform bucket grid over bounding boxes.

MaxOverlap's step (c) — "compute the intersection points of each pair of
NLCs" — needs candidate pairs of circles whose disks might intersect.  A
bucket grid sized to the median NLC diameter enumerates those pairs with
near-linear cost in practice and far lower constant factors than tree
descent in pure Python.  The grid also answers stabbing queries ("which
boxes contain this point?") for coverage counting.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

from repro.geometry.rect import Rect


class UniformGrid:
    """Buckets items by bounding box over a uniform grid.

    Parameters
    ----------
    bounds:
        The rectangle the grid tiles.  Boxes outside the bounds are clamped
        into the border cells, so the structure stays correct (if slower)
        for out-of-bounds data.
    cell_size:
        Edge length of a square cell.
    """

    def __init__(self, bounds: Rect, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._bounds = bounds
        self._cell = cell_size
        self._nx = max(1, math.ceil(bounds.width / cell_size))
        self._ny = max(1, math.ceil(bounds.height / cell_size))
        self._cells: dict[tuple[int, int], list[tuple[Rect, Any]]] = {}
        self._size = 0

    @classmethod
    def for_boxes(cls, boxes: Iterable[Rect],
                  target_per_cell: float = 4.0) -> "UniformGrid":
        """Build a grid sized to a collection of boxes.

        The cell edge is the larger of the mean box extent and the edge
        that yields roughly ``target_per_cell`` boxes per occupied cell —
        both too-fine (boxes smeared over many cells) and too-coarse
        (everything in one bucket) grids are avoided.
        """
        boxes = list(boxes)
        if not boxes:
            raise ValueError("for_boxes: no boxes given")
        bounds = boxes[0]
        extent_sum = 0.0
        for box in boxes:
            bounds = bounds.union(box)
            extent_sum += max(box.width, box.height)
        mean_extent = extent_sum / len(boxes)
        area = max(bounds.area, 1e-30)
        density_edge = math.sqrt(area * target_per_cell / len(boxes))
        cell = max(mean_extent, density_edge)
        if cell <= 0.0:
            cell = max(bounds.diagonal, 1.0) / 16.0
        return cls(bounds, cell)

    def __len__(self) -> int:
        return self._size

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nx, self._ny)

    def insert(self, rect: Rect, item: Any) -> None:
        """Register ``item`` under every cell its box touches."""
        self._size += 1
        for key in self._cover(rect):
            self._cells.setdefault(key, []).append((rect, item))

    def query_rect(self, rect: Rect) -> list[Any]:
        """Items whose box intersects ``rect`` (deduplicated, any order)."""
        seen: set[int] = set()
        out: list[Any] = []
        for key in self._cover(rect):
            for box, item in self._cells.get(key, ()):
                ident = id(item)
                if ident not in seen and box.intersects(rect):
                    seen.add(ident)
                    out.append(item)
        return out

    def query_point(self, x: float, y: float) -> list[Any]:
        """Items whose box contains the point."""
        out: list[Any] = []
        seen: set[int] = set()
        for box, item in self._cells.get(self._cell_of(x, y), ()):
            ident = id(item)
            if ident not in seen and box.contains_point(x, y):
                seen.add(ident)
                out.append(item)
        return out

    def candidate_pairs(self) -> Iterator[tuple[Any, Any]]:
        """All distinct item pairs whose boxes intersect.

        Each pair is yielded exactly once even when the two boxes share
        several cells: a pair is emitted only from the cell containing the
        lexicographically smallest shared corner of the two cover ranges.
        """
        for (ix, iy), bucket in self._cells.items():
            n = len(bucket)
            for a in range(n):
                rect_a, item_a = bucket[a]
                for b in range(a + 1, n):
                    rect_b, item_b = bucket[b]
                    if not rect_a.intersects(rect_b):
                        continue
                    ox = max(self._index_x(rect_a.xmin),
                             self._index_x(rect_b.xmin))
                    oy = max(self._index_y(rect_a.ymin),
                             self._index_y(rect_b.ymin))
                    if (ox, oy) == (ix, iy):
                        yield (item_a, item_b)

    # ------------------------------------------------------------------ #

    def _index_x(self, x: float) -> int:
        i = int((x - self._bounds.xmin) / self._cell)
        return min(max(i, 0), self._nx - 1)

    def _index_y(self, y: float) -> int:
        j = int((y - self._bounds.ymin) / self._cell)
        return min(max(j, 0), self._ny - 1)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (self._index_x(x), self._index_y(y))

    def _cover(self, rect: Rect) -> Iterator[tuple[int, int]]:
        x0 = self._index_x(rect.xmin)
        x1 = self._index_x(rect.xmax)
        y0 = self._index_y(rect.ymin)
        y1 = self._index_y(rect.ymax)
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                yield (ix, iy)
