"""MaxFirst for MaxBRkNN — a full reproduction of Zhou et al., ICDE 2011.

Given customer objects ``O`` and service sites ``P``, a MaxBRkNN query
finds the region(s) where opening a new service site attracts the maximum
total customer influence, where each customer patronises its ``k`` nearest
sites with rank-dependent probabilities and carries an importance weight.

Quick start::

    import repro

    result = repro.find_optimal_regions(
        customers, sites, k=2, probability=[0.8, 0.2])
    print(result.score, result.optimal_location())

Public surface
--------------
* :func:`find_optimal_regions` / :func:`find_optimal_location` — one-call
  solvers (MaxFirst under the hood).
* :class:`MaxBRkNNProblem` — validated instance specification.
* :class:`MaxFirst` — the paper's algorithm with its full control surface.
* :class:`MaxOverlap` — the state-of-the-art baseline the paper compares
  against (Wong et al., PVLDB 2009).
* :class:`ProbabilityModel` — uniform / linear (M1) / harmonic (M2) /
  custom rank-probability models.
* :class:`InfluenceEvaluator` — score candidate locations against an
  instance.
* :mod:`repro.datasets` — the paper's synthetic and (substituted)
  real-world workloads.
* :mod:`repro.geometry` / :mod:`repro.index` — the from-scratch geometric
  and spatial-index substrates.
"""

from repro.baselines import (MaxOverlap, MaxOverlapResult, MaxOverlapStats,
                             grid_search, reference_solve)
from repro.core import (InfluenceBreakdown, InfluenceEvaluator,
                        InfluenceSet, MaxBRkNNProblem, MaxBRkNNResult,
                        MaxFirst, MaxFirstStats, NewSiteImpact,
                        OptimalRegion, ProbabilityModel, brknn_of_site,
                        build_nlcs, find_optimal_location,
                        find_optimal_regions, impact_of_new_site,
                        solve_with_report,
                        influence_at, knn_sites, site_influence,
                        verify_result)
from repro.geometry import ArcRegion, Circle, Point, Rect

__version__ = "1.0.0"

__all__ = [
    "ArcRegion",
    "Circle",
    "InfluenceBreakdown",
    "InfluenceEvaluator",
    "InfluenceSet",
    "MaxBRkNNProblem",
    "MaxBRkNNResult",
    "MaxFirst",
    "MaxFirstStats",
    "MaxOverlap",
    "MaxOverlapResult",
    "MaxOverlapStats",
    "NewSiteImpact",
    "OptimalRegion",
    "Point",
    "ProbabilityModel",
    "Rect",
    "__version__",
    "brknn_of_site",
    "build_nlcs",
    "find_optimal_location",
    "find_optimal_regions",
    "grid_search",
    "impact_of_new_site",
    "influence_at",
    "knn_sites",
    "reference_solve",
    "site_influence",
    "solve_with_report",
    "verify_result",
]
