"""Minimal SVG writer for MaxBRkNN geometry.

``SvgCanvas`` maps a world-coordinate :class:`~repro.geometry.rect.Rect`
onto a pixel viewport (y flipped — SVG grows downward) and renders the
primitives the library produces: points, circles, rectangles and
circular-arc regions (as SVG path arcs).  ``render_instance`` /
``render_result`` are one-call conveniences over it.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable

from repro.core.result import MaxBRkNNResult
from repro.geometry.arcs import ArcRegion
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect

_HEADER = ('<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
           'height="{h}" viewBox="0 0 {w} {h}">')


class SvgCanvas:
    """Accumulates SVG elements over a world-to-pixel transform.

    >>> canvas = SvgCanvas(Rect(0, 0, 1, 1), width=200)
    >>> canvas.add_point(0.5, 0.5)
    >>> text = canvas.render()
    >>> text.startswith('<svg') and '</svg>' in text
    True
    """

    def __init__(self, world: Rect, width: int = 800,
                 margin: float = 0.03, background: str = "white") -> None:
        if width < 16:
            raise ValueError("width must be at least 16 pixels")
        if world.width <= 0 or world.height <= 0:
            world = world.expanded(max(world.diagonal, 1.0) * 0.5)
        pad = max(world.width, world.height) * margin
        self._world = world.expanded(pad)
        self._width = width
        self._scale = width / self._world.width
        self._height = max(1, int(round(self._world.height * self._scale)))
        self._elements: list[str] = []
        if background:
            self._elements.append(
                f'<rect width="{self._width}" height="{self._height}" '
                f'fill="{background}"/>')

    # ------------------------------------------------------------------ #

    @property
    def pixel_size(self) -> tuple[int, int]:
        return (self._width, self._height)

    def to_pixel(self, x: float, y: float) -> tuple[float, float]:
        """World point to pixel coordinates (y axis flipped)."""
        px = (x - self._world.xmin) * self._scale
        py = (self._world.ymax - y) * self._scale
        return (px, py)

    def add_point(self, x: float, y: float, radius: float = 2.5,
                  color: str = "#1f4e79", opacity: float = 1.0) -> None:
        px, py = self.to_pixel(x, y)
        self._elements.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{radius:.2f}" '
            f'fill="{color}" fill-opacity="{opacity:g}"/>')

    def add_points(self, points: Iterable, radius: float = 2.5,
                   color: str = "#1f4e79", opacity: float = 1.0) -> None:
        for x, y in points:
            self.add_point(float(x), float(y), radius=radius, color=color,
                           opacity=opacity)

    def add_circle(self, circle: Circle, stroke: str = "#888888",
                   stroke_width: float = 1.0, fill: str = "none",
                   fill_opacity: float = 0.1) -> None:
        px, py = self.to_pixel(circle.cx, circle.cy)
        pr = circle.r * self._scale
        fill_attr = (f'fill="{fill}" fill-opacity="{fill_opacity:g}"'
                     if fill != "none" else 'fill="none"')
        self._elements.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{pr:.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width:g}" '
            f'{fill_attr}/>')

    def add_rect(self, rect: Rect, stroke: str = "#444444",
                 stroke_width: float = 1.0, fill: str = "none",
                 fill_opacity: float = 0.15) -> None:
        x0, y1 = self.to_pixel(rect.xmin, rect.ymin)
        x1, y0 = self.to_pixel(rect.xmax, rect.ymax)
        fill_attr = (f'fill="{fill}" fill-opacity="{fill_opacity:g}"'
                     if fill != "none" else 'fill="none"')
        self._elements.append(
            f'<rect x="{x0:.2f}" y="{y0:.2f}" width="{x1 - x0:.2f}" '
            f'height="{y1 - y0:.2f}" stroke="{stroke}" '
            f'stroke-width="{stroke_width:g}" {fill_attr}/>')

    def add_region(self, region: ArcRegion, stroke: str = "#b00020",
                   fill: str = "#b00020", fill_opacity: float = 0.35,
                   stroke_width: float = 1.5) -> None:
        """Render a circular-arc region as a closed SVG path."""
        if region.is_degenerate:
            p = region.degenerate_point
            self.add_point(p.x, p.y, radius=4.0, color=stroke)
            return
        if len(region.arcs) == 1 and region.arcs[0].is_full_circle:
            self.add_circle(region.arcs[0].circle, stroke=stroke,
                            stroke_width=stroke_width, fill=fill,
                            fill_opacity=fill_opacity)
            return
        ordered = region._ordered_arcs()
        start = ordered[0].start_point
        sx, sy = self.to_pixel(start.x, start.y)
        parts = [f"M {sx:.3f} {sy:.3f}"]
        for arc in ordered:
            end = arc.end_point
            ex, ey = self.to_pixel(end.x, end.y)
            pr = arc.circle.r * self._scale
            large = 1 if arc.sweep > math.pi else 0
            # World CCW becomes screen CW because of the y flip.
            parts.append(
                f"A {pr:.3f} {pr:.3f} 0 {large} 0 {ex:.3f} {ey:.3f}")
        parts.append("Z")
        self._elements.append(
            f'<path d="{" ".join(parts)}" stroke="{stroke}" '
            f'stroke-width="{stroke_width:g}" fill="{fill}" '
            f'fill-opacity="{fill_opacity:g}"/>')

    def add_text(self, x: float, y: float, text: str,
                 size: int = 12, color: str = "#222222") -> None:
        px, py = self.to_pixel(x, y)
        safe = (text.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;"))
        self._elements.append(
            f'<text x="{px:.2f}" y="{py:.2f}" font-size="{size}" '
            f'fill="{color}" font-family="sans-serif">{safe}</text>')

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (_HEADER.format(w=self._width, h=self._height)
                + "\n" + body + "\n</svg>\n")

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.render())


def render_instance(problem, nlcs=None, width: int = 800) -> SvgCanvas:
    """Canvas with customers (blue), sites (black squares as dots) and,
    optionally, their NLCs."""
    world = problem.data_bounds()
    if nlcs is not None and len(nlcs):
        world = world.union(nlcs.bounding_box())
    canvas = SvgCanvas(world, width=width)
    if nlcs is not None:
        for i in range(len(nlcs)):
            canvas.add_circle(nlcs.circle(i), stroke="#bbccee",
                              stroke_width=0.6)
    canvas.add_points(problem.customers, radius=2.0, color="#1f4e79",
                      opacity=0.8)
    canvas.add_points(problem.sites, radius=3.5, color="#111111")
    return canvas


def render_result(problem, result: MaxBRkNNResult,
                  width: int = 800, show_nlcs: bool = False) -> SvgCanvas:
    """Canvas with the instance and every optimal region highlighted."""
    canvas = render_instance(problem,
                             nlcs=result.nlcs if show_nlcs else None,
                             width=width)
    for region in result.regions:
        if region.shape is not None:
            canvas.add_region(region.shape)
        else:
            canvas.add_rect(region.seed_quadrant, stroke="#b00020",
                            fill="#b00020")
        p = region.representative_point()
        canvas.add_point(p.x, p.y, radius=3.0, color="#b00020")
    return canvas
