"""Dependency-free SVG rendering of instances, NLCs and optimal regions.

The library has no plotting dependency; :mod:`repro.viz.svg` writes
self-contained SVG files good enough to inspect an instance, the circles
driving it, MaxFirst's quadrant trace and the returned regions, and
:mod:`repro.viz.heatmap` shades influence heat-map tiles
(:mod:`repro.core.heatmap`) the same way.
"""

from repro.viz.heatmap import heat_color, render_heatmap
from repro.viz.svg import SvgCanvas, render_instance, render_result

__all__ = ["SvgCanvas", "heat_color", "render_heatmap",
           "render_instance", "render_result"]
