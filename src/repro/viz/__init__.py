"""Dependency-free SVG rendering of instances, NLCs and optimal regions.

The library has no plotting dependency; :mod:`repro.viz.svg` writes
self-contained SVG files good enough to inspect an instance, the circles
driving it, MaxFirst's quadrant trace and the returned regions.
"""

from repro.viz.svg import SvgCanvas, render_instance, render_result

__all__ = ["SvgCanvas", "render_instance", "render_result"]
