"""SVG rendering of influence heat maps.

:func:`render_heatmap` paints an :class:`repro.core.heatmap
.InfluenceHeatmap` as a colored tile grid on an :class:`SvgCanvas` —
one ``<rect>`` per tile, shaded by its proven lower influence on a
white→gold→crimson ramp — with optional site/customer overlays so the
field can be read against the instance that produced it.  Pure stdlib
string assembly like the rest of :mod:`repro.viz`; no plotting
dependency.
"""

from __future__ import annotations

from repro.core.heatmap import InfluenceHeatmap
from repro.geometry.rect import Rect
from repro.viz.svg import SvgCanvas

__all__ = ["heat_color", "render_heatmap"]

#: White → gold → crimson control points of the influence ramp.
_RAMP = ((1.0, 1.0, 1.0), (1.0, 0.84, 0.25), (0.86, 0.08, 0.24))


def heat_color(value: float, vmax: float) -> str:
    """Hex color for ``value`` on the ``[0, vmax]`` influence ramp."""
    t = 0.0 if vmax <= 0.0 else min(max(value / vmax, 0.0), 1.0)
    if t <= 0.5:
        lo, hi, u = _RAMP[0], _RAMP[1], t * 2.0
    else:
        lo, hi, u = _RAMP[1], _RAMP[2], (t - 0.5) * 2.0
    channels = (int(round(255 * (a + (b - a) * u)))
                for a, b in zip(lo, hi))
    return "#" + "".join(f"{c:02x}" for c in channels)


def render_heatmap(heatmap: InfluenceHeatmap, *, width: int = 800,
                   problem: object | None = None,
                   show_upper_outline: bool = True) -> SvgCanvas:
    """Canvas with the heat map's lower-bound field as shaded tiles.

    Tiles whose certified upper bound ties the global maximum get an
    outline (``show_upper_outline``) — the candidate set any optimal
    location must fall in.  Passing the source ``problem`` overlays its
    sites (black) and customers (faint blue).
    """
    space = heatmap.space
    canvas = SvgCanvas(space, width=width)
    vmax = float(heatmap.upper.max()) if heatmap.upper.size else 0.0
    cell_w = space.width / heatmap.nx
    cell_h = space.height / heatmap.ny
    outline_floor = vmax * (1.0 - 1e-9)
    for j in range(heatmap.ny):
        for i in range(heatmap.nx):
            tile = Rect(space.xmin + i * cell_w,
                        space.ymin + j * cell_h,
                        space.xmin + (i + 1) * cell_w,
                        space.ymin + (j + 1) * cell_h)
            color = heat_color(float(heatmap.lower[j, i]), vmax)
            canvas.add_rect(tile, stroke="none", stroke_width=0.0,
                            fill=color, fill_opacity=0.9)
            if (show_upper_outline and vmax > 0.0
                    and float(heatmap.upper[j, i]) >= outline_floor):
                canvas.add_rect(tile, stroke="#b00020",
                                stroke_width=1.2, fill="none")
    if problem is not None:
        canvas.add_points(problem.customers,  # type: ignore[attr-defined]
                          radius=1.5, color="#1f4e79", opacity=0.35)
        canvas.add_points(problem.sites,  # type: ignore[attr-defined]
                          radius=3.0, color="#111111")
    return canvas
