"""JSON serialization of solver results.

Results carry geometry (arc regions), statistics and the NLC set; this
module round-trips everything a downstream pipeline needs to consume or
archive a solve without re-running it.  The format is versioned plain
JSON — no pickle, so archives are portable and safe to load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.quadrant import MaxFirstStats
from repro.core.region import OptimalRegion
from repro.core.result import MaxBRkNNResult
from repro.geometry.arcs import Arc, ArcRegion
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet

FORMAT_VERSION = 1


def result_to_dict(result: MaxBRkNNResult) -> dict:
    """Plain-dict form of a result (JSON-ready)."""
    return {
        "format_version": FORMAT_VERSION,
        "score": result.score,
        "space": _rect_to_list(result.space),
        "regions": [_region_to_dict(r) for r in result.regions],
        "nlcs": {
            "cx": result.nlcs.cx.tolist(),
            "cy": result.nlcs.cy.tolist(),
            "r": result.nlcs.r.tolist(),
            "scores": result.nlcs.scores.tolist(),
            "owners": result.nlcs.owners.tolist(),
            "levels": result.nlcs.levels.tolist(),
        },
        "stats": result.stats.as_dict() if result.stats else None,
        "timings": dict(result.timings),
    }


def result_from_dict(data: dict) -> MaxBRkNNResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version: {version!r} "
            f"(this build reads {FORMAT_VERSION})")
    nlcs_data = data["nlcs"]
    nlcs = CircleSet(
        np.array(nlcs_data["cx"], dtype=np.float64),
        np.array(nlcs_data["cy"], dtype=np.float64),
        np.array(nlcs_data["r"], dtype=np.float64),
        np.array(nlcs_data["scores"], dtype=np.float64),
        owners=np.array(nlcs_data["owners"], dtype=np.int64),
        levels=np.array(nlcs_data["levels"], dtype=np.int64),
    )
    stats = None
    if data.get("stats") is not None:
        stats = MaxFirstStats(**data["stats"])
    return MaxBRkNNResult(
        score=float(data["score"]),
        regions=tuple(_region_from_dict(r) for r in data["regions"]),
        nlcs=nlcs,
        space=_rect_from_list(data["space"]),
        stats=stats,
        timings=dict(data.get("timings", {})),
    )


def save_result(path: str | Path, result: MaxBRkNNResult,
                indent: int | None = 2) -> None:
    """Write a result as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result),
                                     indent=indent))


def load_result(path: str | Path) -> MaxBRkNNResult:
    """Read a result previously written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------- #

def _rect_to_list(rect: Rect) -> list[float]:
    return [rect.xmin, rect.ymin, rect.xmax, rect.ymax]


def _rect_from_list(values) -> Rect:
    return Rect(*[float(v) for v in values])


def _circle_to_list(circle: Circle) -> list[float]:
    return [circle.cx, circle.cy, circle.r]


def _region_to_dict(region: OptimalRegion) -> dict:
    shape = None
    if region.shape is not None:
        shape = {
            "circles": [_circle_to_list(c) for c in region.shape.circles],
            "arcs": [
                [_circle_to_list(arc.circle), arc.start, arc.sweep]
                for arc in region.shape.arcs
            ],
            "degenerate_point": (
                [region.shape.degenerate_point.x,
                 region.shape.degenerate_point.y]
                if region.shape.degenerate_point is not None else None),
        }
    return {
        "score": region.score,
        "seed_quadrant": _rect_to_list(region.seed_quadrant),
        "cover": list(region.cover),
        "clipping_count": region.clipping_count,
        "shape": shape,
    }


def _region_from_dict(data: dict) -> OptimalRegion:
    shape = None
    if data.get("shape") is not None:
        raw = data["shape"]
        degenerate = raw.get("degenerate_point")
        shape = ArcRegion(
            circles=tuple(Circle(*c) for c in raw["circles"]),
            arcs=tuple(
                Arc(Circle(*circle), float(start), float(sweep))
                for circle, start, sweep in raw["arcs"]),
            degenerate_point=(Point(*degenerate)
                              if degenerate is not None else None),
        )
    return OptimalRegion(
        score=float(data["score"]),
        shape=shape,
        seed_quadrant=_rect_from_list(data["seed_quadrant"]),
        cover=tuple(int(i) for i in data["cover"]),
        clipping_count=int(data["clipping_count"]),
    )
