"""Pluggable NLC storage backends: ``ram`` / ``shm`` / ``memmap``.

The façade over :mod:`repro.store.base`'s protocol.  Typical flows:

Publish a built set and ship the handle::

    from repro import store

    owner = store.publish(nlcs, "shm")       # or "ram" / "memmap"
    handle = owner.handle                     # tiny, picklable
    ...
    views = store.attach(handle)              # read-only CircleSet
    tile = store.attach_slice(handle, lo, hi)  # one row slice only
    ...
    store.detach()                            # drop cached attachments
    owner.close()                             # unlink segment/file

Stream a build without materializing the arrays::

    writer = store.writer(capacity, "memmap")
    for chunk in chunks:                      # six field arrays each
        writer.append(chunk)
    owner = writer.finalize()                 # sealed at appended rows

Backend selection honours the ``REPRO_STORE`` environment variable via
:func:`resolve_store_name`; the CLI's ``--store`` flag and the engine's
``store=`` options pass through it.  See DESIGN.md "§ Storage tier".
"""

from __future__ import annotations

import os

from repro.index.circleset import CircleSet
from repro.store import sanitize as _sanitize
from repro.store.base import (
    BYTES_PER_ROW,
    FIELD_DTYPES,
    FIELD_NAMES,
    NLCStore,
    NLCStoreBackend,
    StoreHandle,
    StoreWriter,
    store_nbytes,
)

__all__ = [
    "BYTES_PER_ROW",
    "FIELD_DTYPES",
    "FIELD_NAMES",
    "NLCStore",
    "NLCStoreBackend",
    "STORE_NAMES",
    "StoreHandle",
    "StoreWriter",
    "attach",
    "attach_slice",
    "detach",
    "get_backend",
    "publish",
    "resolve_store_name",
    "store_nbytes",
    "writer",
]

#: Every registered backend name, in documentation order.
STORE_NAMES: tuple[str, ...] = ("ram", "shm", "memmap")

_BACKENDS: dict[str, NLCStoreBackend] = {}


def get_backend(name: str) -> NLCStoreBackend:
    """The per-process singleton backend registered under ``name``."""
    backend = _BACKENDS.get(name)
    if backend is None:
        if name == "ram":
            from repro.store.ram import RamBackend

            backend = RamBackend()
        elif name == "shm":
            from repro.store.shm import ShmBackend

            backend = ShmBackend()
        elif name == "memmap":
            from repro.store.memmap import MemmapBackend

            backend = MemmapBackend()
        else:
            raise ValueError(
                f"unknown store backend {name!r} "
                f"(choose from {', '.join(STORE_NAMES)})")
        # repro: worker-state(deliberate per-process singleton cache —
        # each process owns its backend instances and their attachment
        # caches; workers filling their own copy is the design)
        _BACKENDS[name] = backend
    return backend


def resolve_store_name(name: str | None = None, *,
                       default: str = "ram") -> str:
    """Pick a backend name: explicit choice > ``REPRO_STORE`` env >
    ``default`` — and validate it."""
    resolved = name or os.environ.get("REPRO_STORE") or default
    if resolved not in STORE_NAMES:
        raise ValueError(
            f"unknown store backend {resolved!r} "
            f"(choose from {', '.join(STORE_NAMES)})")
    return resolved


def publish(nlcs: CircleSet, store: str | None = None) -> NLCStore:
    """Copy a built ``CircleSet`` into a fresh store (see module doc)."""
    return get_backend(resolve_store_name(store)).publish(nlcs)


def writer(capacity: int, store: str | None = None) -> StoreWriter:
    """Reserve a ``capacity``-row store for a streaming build."""
    return get_backend(resolve_store_name(store)).writer(capacity)


def attach(handle: StoreHandle) -> CircleSet:
    """Read-only views over every row of a published store."""
    _sanitize.attached(handle[1])
    return get_backend(handle[0]).attach(handle)


def attach_slice(handle: StoreHandle, lo: int, hi: int) -> CircleSet:
    """Read-only views over rows ``[lo, hi)`` of a published store."""
    _sanitize.attached(handle[1])
    return get_backend(handle[0]).attach_slice(handle, lo, hi)


def detach(keep: tuple[str, ...] = ()) -> None:
    """Drop every backend's cached attachments except the store keys in
    ``keep`` (worker epoch turn)."""
    _sanitize.detached(keep)
    for backend in _BACKENDS.values():
        backend.detach(keep)
