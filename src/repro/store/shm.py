"""Shared-memory store backend (the PR-5 zero-copy transport).

One ``multiprocessing.shared_memory`` segment holds the six SoA arrays
back to back (field ``i`` at ``i * 8 * capacity``).  The parent
publishes once; pool workers attach read-only views — of the whole
store or of a tile's row slice — by segment name, so tile jobs ship a
few dozen bytes instead of the NLC payload.

The entire segment lifecycle lives here (moved out of
``CircleSet.to_shared/from_shared/detach_shared``): the per-process
attachment cache, the BufferError graveyard for mappings whose numpy
views outlive a detach, and the owner-side finally-unlink backstop.  A
worker that dies mid-attach leaks nothing: its mapping vanishes with
the process, and the name is the owner's to unlink —
``tests/store/test_backends.py`` kills a worker between map and use to
prove it.
"""

from __future__ import annotations

import itertools
import os
import weakref
from typing import Any

from repro.index.circleset import CircleSet
from repro.obs import metrics as _obs_metrics
from repro.store import sanitize as _sanitize
from repro.store.base import (
    NLCStore,
    StoreHandle,
    StoreWriter,
    check_slice,
    coerce_chunk,
    field_offset,
    record_attach,
    soa_arrays,
    store_nbytes,
    views_over,
)

#: Bytes of shared-memory segments mapped by fresh attaches (transport
#: counter: mode- and topology-dependent, excluded from identity checks
#: and the perf gate — see docs/observability.md).
_SHM_BYTES_MAPPED = _obs_metrics.counter("shm_bytes_mapped")

_SHM_SEQ = itertools.count()


def _new_segment(size: int) -> Any:
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(
        name=f"repro-nlc-{os.getpid()}-{next(_SHM_SEQ)}",
        create=True, size=max(1, size))


def _release_segment(seg: Any) -> None:
    """Unmap + unlink one owned segment, tolerating double release."""
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # repro: fallback(already unlinked — close
        # races interpreter-exit finalizers with explicit close calls)
        pass


class ShmStore(NLCStore):
    """Owner of one shared-memory segment (see module docstring).

    ``close()`` is idempotent and safe to call with workers still
    mapped: POSIX keeps the pages alive until the last attachment
    unmaps, so unlinking early only removes the name.  A
    ``weakref.finalize`` backstop unlinks at interpreter exit if the
    owner forgets.
    """

    __slots__ = ("_seg", "_finalizer", "__weakref__")

    def __init__(self, seg: Any, length: int, capacity: int) -> None:
        super().__init__("shm", seg.name, length, capacity)
        self._seg = seg
        self._finalizer = weakref.finalize(self, _release_segment, seg)

    @property
    def name(self) -> str:
        """Legacy alias (pre-store API) for the segment name."""
        return self.key

    @property
    def nbytes(self) -> int:
        return int(self._seg.size)

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        _sanitize.store_closed(self)
        self._finalizer()


class _ShmWriter(StoreWriter):
    __slots__ = ("_seg",)

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._seg = _new_segment(store_nbytes(capacity))

    def _write(self, chunk: tuple, at: int) -> None:
        buf = self._seg.buf
        for i, arr in enumerate(chunk):
            start = field_offset(i, self.capacity) + at * 8
            buf[start:start + arr.nbytes] = arr.tobytes()

    def _seal(self, length: int) -> NLCStore:
        return ShmStore(self._seg, length, self.capacity)

    def _release(self) -> None:
        _release_segment(self._seg)


class ShmBackend:
    """The ``shm`` storage backend (one instance per process)."""

    name = "shm"

    def __init__(self) -> None:
        #: name -> mapped (not owned) SharedMemory segment.
        self._segments: dict[str, Any] = {}
        #: (name, lo, hi) -> cached CircleSet views; (name, None, None)
        #: is the full attachment.
        self._views: dict[tuple, CircleSet] = {}
        #: Segments whose unmap was deferred because numpy views were
        #: still live at detach time; retried on the next detach().
        self._pending: list[Any] = []

    def publish(self, nlcs: CircleSet) -> ShmStore:
        writer = _ShmWriter(len(nlcs))
        writer.append(soa_arrays(nlcs))
        store = writer.finalize()
        assert isinstance(store, ShmStore)
        return store

    def writer(self, capacity: int) -> _ShmWriter:
        return _ShmWriter(capacity)

    def _segment(self, name: str) -> Any:
        seg = self._segments.get(name)
        if seg is None:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(name=name)
            # Note on the resource tracker: attaching registers the
            # segment again (3.13's track=False is not available here).
            # Pool workers run under forkserver/spawn contexts whose
            # tracker is the parent's, and registration is a set-add —
            # the owner's eventual unlink/unregister balances it, so no
            # deregistration dance is needed (an explicit unregister
            # here would clobber the owner's entry in the tracker).
            self._segments[name] = seg
            _SHM_BYTES_MAPPED.add(seg.size)
        return seg

    def attach(self, handle: StoreHandle) -> CircleSet:
        _, name, length, capacity, _ = handle
        cache_key = (name, None, None)
        cached = self._views.get(cache_key)
        if cached is not None:
            return cached
        seg = self._segment(name)
        nlcs = CircleSet(*views_over(seg.buf, length, capacity))
        record_attach(length, is_slice=False)
        self._views[cache_key] = nlcs
        return nlcs

    def attach_slice(self, handle: StoreHandle, lo: int,
                     hi: int) -> CircleSet:
        _, name, length, capacity, _ = handle
        lo, hi = check_slice(lo, hi, length)
        cache_key = (name, lo, hi)
        cached = self._views.get(cache_key)
        if cached is not None:
            return cached
        seg = self._segment(name)
        nlcs = CircleSet(*views_over(seg.buf, hi - lo, capacity, lo=lo))
        record_attach(hi - lo, is_slice=True)
        self._views[cache_key] = nlcs
        return nlcs

    def detach(self, keep: tuple[str, ...] = ()) -> None:
        for cache_key in [k for k in self._views if k[0] not in keep]:
            # the views die here unless a caller still holds them
            del self._views[cache_key]
        for name in [n for n in self._segments if n not in keep]:
            self._pending.append(self._segments.pop(name))
        still_exported = []
        for seg in self._pending:
            try:
                seg.close()
            except BufferError:  # repro: fallback(a caller still holds
                # the numpy views; park the segment and retry next
                # rotation — nothing leaks, /dev/shm cleanup is the
                # owner's unlink)
                still_exported.append(seg)
        self._pending[:] = still_exported
