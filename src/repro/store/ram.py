"""In-process array store backend (today's default, made explicit).

The handle's payload carries the six SoA arrays *by value*: attaching
in the publishing process is zero-copy (the views are the arrays), but
shipping the handle across a process boundary pickles the full payload
— O(n) per job, exactly the pre-PR-5 transport cost.  ``ram`` is the
compatibility backend for single-process runs and tests; pool
transports default to ``shm``.

Nothing is cached and nothing needs unlinking: ``detach`` is a no-op
and ``close`` just drops the owner's reference.
"""

from __future__ import annotations

import itertools
import os
from typing import Any

import numpy as np

from repro.index.circleset import CircleSet
from repro.store import sanitize as _sanitize
from repro.store.base import (
    FIELD_DTYPES,
    NLCStore,
    StoreHandle,
    StoreWriter,
    check_slice,
    coerce_chunk,
    record_attach,
    soa_arrays,
)

_RAM_SEQ = itertools.count()


class RamStore(NLCStore):
    """Owner of one in-process array set."""

    __slots__ = ("_arrays",)

    def __init__(self, arrays: tuple[np.ndarray, ...], length: int,
                 capacity: int) -> None:
        super().__init__("ram", f"ram-{os.getpid()}-{next(_RAM_SEQ)}",
                         length, capacity)
        self._arrays = arrays

    def _payload(self) -> Any:
        return self._arrays

    def close(self) -> None:
        _sanitize.store_closed(self)
        self._arrays = ()


class _RamWriter(StoreWriter):
    __slots__ = ("_chunks",)

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._chunks: list[tuple[np.ndarray, ...]] = []

    def _write(self, chunk: tuple, at: int) -> None:
        self._chunks.append(chunk)

    def _seal(self, length: int) -> NLCStore:
        if self._chunks:
            arrays = tuple(np.concatenate([c[i] for c in self._chunks])
                           for i in range(6))
        else:
            arrays = tuple(np.empty(0, dtype=dt) for dt in FIELD_DTYPES)
        self._chunks = []
        return RamStore(coerce_chunk(arrays), length, self.capacity)

    def _release(self) -> None:
        self._chunks = []


class RamBackend:
    """The ``ram`` storage backend (stateless)."""

    name = "ram"

    def publish(self, nlcs: CircleSet) -> RamStore:
        n = len(nlcs)
        return RamStore(soa_arrays(nlcs), n, n)

    def writer(self, capacity: int) -> _RamWriter:
        return _RamWriter(capacity)

    def attach(self, handle: StoreHandle) -> CircleSet:
        _, _, length, _, arrays = handle
        if arrays is None or len(arrays) != 6:
            raise ValueError("ram handle lost its payload (store closed?)")
        record_attach(length, is_slice=False)
        return CircleSet(*arrays)

    def attach_slice(self, handle: StoreHandle, lo: int,
                     hi: int) -> CircleSet:
        _, _, length, _, arrays = handle
        if arrays is None or len(arrays) != 6:
            raise ValueError("ram handle lost its payload (store closed?)")
        lo, hi = check_slice(lo, hi, length)
        record_attach(hi - lo, is_slice=True)
        return CircleSet(*(arr[lo:hi] for arr in arrays))

    def detach(self, keep: tuple[str, ...] = ()) -> None:
        return None
