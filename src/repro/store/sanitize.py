"""Runtime lifecycle sanitizer: ``REPRO_SANITIZE=1``.

The static RPR104 rule proves *shape* — every acquire syntactically
paired with a release.  This module proves *behaviour*: when enabled, a
per-process ledger records every store owner created
(:func:`store_created`), every owner closed, every writer opened and
finalized/aborted, every facade attach/detach, and every pool task
entered and exited.  :func:`check` — run by the test suite's
``pytest_sessionfinish`` hook and by an ``atexit`` backstop — then
asserts the balanced-lifecycle invariants:

* every non-ram owner was closed (an shm segment or memmap file whose
  owner was garbage-collected without ``close()`` survives only by the
  ``weakref.finalize`` backstop — luck, not lifecycle);
* every writer was finalized or aborted;
* no ``repro-nlc-{pid}-*`` segment/file created by this process is
  still on disk;
* every pool task that started also finished.

Violations are reported through :mod:`repro.obs` (the
``store_sanitize_violations`` gauge), warned with the *creating call
site* of each leaked resource — the first stack frame outside
``repro/store/`` — and raised as :class:`StoreLeakError` so CI names
the leaking line instead of a generic "segment leaked" message.

The mode costs one ``None``-check per hook when disabled; the
environment read here is the sanitizer's own switch and is an audited
RPR106 seam.
"""

from __future__ import annotations

import atexit
import os
import traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # runtime import would cycle through repro.store
    from repro.store.base import NLCStore, StoreWriter

__all__ = [
    "StoreLeakError",
    "active",
    "check",
    "disable",
    "enable",
    "reset",
]


class StoreLeakError(AssertionError):
    """A store lifecycle invariant was violated (see the message for
    the leaking call sites)."""


def _call_site() -> str:
    """``path:line in func`` of the nearest frame outside repro/store."""
    for frame in reversed(traceback.extract_stack()):
        fname = frame.filename.replace("\\", "/")
        if "/repro/store/" in fname:
            continue
        return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown site>"


@dataclass
class _Ledger:
    """Per-process lifecycle book-keeping (one instance when enabled)."""

    #: store key → (backend name, creating site, closed?)
    owners: dict[str, list] = field(default_factory=dict)
    #: writer token → [creating site, done?]
    writers: dict[int, list] = field(default_factory=dict)
    next_writer_token: int = 1
    attached_keys: set[str] = field(default_factory=set)
    attaches: int = 0
    detaches: int = 0
    tasks_started: int = 0
    tasks_finished: int = 0


_LEDGER: _Ledger | None = None
_ATEXIT_REGISTERED = False


def active() -> bool:
    """Is the sanitizer recording in this process?"""
    return _LEDGER is not None


def enable() -> None:
    """Start (or keep) recording; registers the atexit backstop once."""
    global _LEDGER, _ATEXIT_REGISTERED
    if _LEDGER is None:
        _LEDGER = _Ledger()
    if not _ATEXIT_REGISTERED:
        # Registered at enable time so it runs *before* the stores'
        # weakref.finalize backstops (atexit is LIFO, finalizers run
        # from the earlier-registered _exitfunc) — leaks are observed
        # before the backstop quietly unlinks them.
        atexit.register(_atexit_check)
        _ATEXIT_REGISTERED = True


def disable() -> None:
    """Stop recording and drop the ledger."""
    global _LEDGER
    _LEDGER = None


def reset() -> None:
    """Drop all recorded state but keep recording (test isolation)."""
    global _LEDGER
    if _LEDGER is not None:
        _LEDGER = _Ledger()


# --------------------------------------------------------------------
# Hooks — called unconditionally from repro.store; each is a no-op
# None-check when the sanitizer is off.

def store_created(store: "NLCStore") -> None:
    if _LEDGER is None:
        return
    _LEDGER.owners[store.key] = [store.backend, _call_site(), False]


def store_closed(store: "NLCStore") -> None:
    if _LEDGER is None:
        return
    entry = _LEDGER.owners.get(store.key)
    if entry is not None:
        entry[2] = True


def writer_opened(writer: "StoreWriter") -> None:
    if _LEDGER is None:
        return
    token = _LEDGER.next_writer_token
    _LEDGER.next_writer_token += 1
    writer._san_token = token  # noqa: SLF001 — slot reserved in base
    _LEDGER.writers[token] = [_call_site(), False]


def writer_done(writer: "StoreWriter") -> None:
    if _LEDGER is None:
        return
    token = getattr(writer, "_san_token", None)
    if token is not None and token in _LEDGER.writers:
        _LEDGER.writers[token][1] = True


def attached(key: str) -> None:
    if _LEDGER is None:
        return
    # repro: worker-state(the ledger is deliberately per-process — each
    # worker audits its own lifecycles; nothing here feeds results)
    _LEDGER.attaches += 1
    _LEDGER.attached_keys.add(key)


def detached(keep: tuple[str, ...] = ()) -> None:
    if _LEDGER is None:
        return
    # repro: worker-state(per-process audit ledger, as above)
    _LEDGER.detaches += 1
    _LEDGER.attached_keys.intersection_update(keep)


class task:
    """Context manager bracketing one pool task (no-op when off)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "task":
        if _LEDGER is not None:
            _LEDGER.tasks_started += 1
        return self

    def __exit__(self, *exc: object) -> None:
        if _LEDGER is not None:
            _LEDGER.tasks_finished += 1


# --------------------------------------------------------------------
# The check.

def _orphan_files() -> Iterator[str]:
    """``repro-nlc-{pid}-*`` segments/files this process left on disk."""
    pid = os.getpid()
    shm_root = Path("/dev/shm")
    if shm_root.is_dir():
        yield from (str(p) for p in
                    sorted(shm_root.glob(f"repro-nlc-{pid}-*")))
    try:
        from repro.store.memmap import store_dir

        yield from (str(p) for p in
                    sorted(Path(store_dir()).glob(f"repro-nlc-{pid}-*.nlc")))
    except Exception:  # pragma: no cover - store_dir unavailable
        # repro: fallback(orphan scan is best-effort; the owner/writer
        # ledger checks above still run without it)
        pass


def violations(*, scan_disk: bool = True) -> list[str]:
    """Current invariant violations, one human-readable line each."""
    if _LEDGER is None:
        return []
    out: list[str] = []
    for key, (backend, site, closed) in sorted(_LEDGER.owners.items()):
        if closed or backend == "ram":
            continue  # ram owners hold no OS resource
        out.append(f"store owner {key!r} ({backend}) never closed; "
                   f"created at {site}")
    unfinalized = False
    for _, (site, done) in sorted(_LEDGER.writers.items()):
        if not done:
            unfinalized = True
            out.append(f"store writer never finalized/aborted; opened "
                       f"at {site}")
    if scan_disk and not unfinalized:
        # An open writer legitimately holds its segment/file; skip the
        # disk scan rather than double-report it as an orphan.
        known_open = {key for key, (b, _, closed) in _LEDGER.owners.items()
                      if not closed and b != "ram"}
        for path in _orphan_files():
            # shm keys are segment names; memmap keys are full paths.
            if path in known_open or Path(path).name in known_open:
                continue  # already reported with its call site above
            out.append(f"orphaned store segment/file on disk: {path}")
    if _LEDGER.tasks_started != _LEDGER.tasks_finished:
        out.append(f"pool task imbalance: {_LEDGER.tasks_started} "
                   f"started, {_LEDGER.tasks_finished} finished")
    return out


def check(*, detach: bool = True) -> None:
    """Assert the balanced-lifecycle invariants; raise on violation.

    ``detach=True`` first drops this process's cached attachments (via
    the facade, so the drop is itself recorded): cached views must not
    be what keeps a closed segment's pages alive when we look for
    leaks, and dropping them lets shm's deferred-unlink graveyard
    drain.
    """
    if _LEDGER is None:
        return
    if detach:
        from repro import store

        store.detach()
    found = violations()
    try:
        from repro.obs import metrics as _m

        _m.gauge("store_sanitize_violations").set(float(len(found)))
    except Exception:  # pragma: no cover - obs unavailable at exit
        # repro: fallback(gauge reporting is advisory; the raise below
        # is the load-bearing signal)
        pass
    if found:
        message = ("store sanitizer found lifecycle violations:\n  "
                   + "\n  ".join(found))
        warnings.warn(message, ResourceWarning, stacklevel=2)
        raise StoreLeakError(message)


def _atexit_check() -> None:
    try:
        check()
    except StoreLeakError as exc:
        # Raising inside atexit prints a traceback but cannot change
        # the exit status; print the report deterministically instead.
        print(f"REPRO_SANITIZE: {exc}", flush=True)


def enabled_from_env() -> bool:
    """Honour ``REPRO_SANITIZE=1`` (the audited switch for this mode)."""
    return os.environ.get("REPRO_SANITIZE", "") == "1"


if enabled_from_env():  # pragma: no cover - exercised via subprocesses
    enable()
