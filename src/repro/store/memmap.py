"""Memory-mapped file store backend — the out-of-core tier.

The SoA goes down as one file: a fixed-size JSON header (magic,
version, ``length``, ``capacity``, field dtypes) followed by the six
field regions at ``HEADER_BYTES + i * 8 * capacity``.  Publishing and
the streaming writer use plain *buffered file writes* (seek + write per
field region), never a writable mapping — dirty mapped pages would
count toward the producer's RSS, written-through page cache does not,
and keeping the build's peak RSS at O(chunk) is the entire point.

Consumers attach with ``mmap.ACCESS_READ`` and numpy ``frombuffer``
views (same layout helper as the shm backend).  Mapped file pages enter
RSS only when touched and leave it when the mapping is dropped, so a
tile-at-a-time solve that attaches one row slice per tile — the cached
full attachment is for long-lived workers; slice attachments are
deliberately *uncached* and die with the returned ``CircleSet`` — holds
a resident footprint of O(slice) against a store of O(n).
"""

from __future__ import annotations

import itertools
import json
import mmap
import os
import tempfile
import weakref
from typing import Any, BinaryIO

import numpy as np

from repro.index.circleset import CircleSet
from repro.store import sanitize as _sanitize
from repro.store.base import (
    FIELD_DTYPES,
    NLCStore,
    StoreHandle,
    StoreWriter,
    check_slice,
    field_offset,
    record_attach,
    soa_arrays,
    store_nbytes,
    views_over,
)

#: Fixed header region: a padded JSON line, rewritten in place at
#: finalize time with the true row count.
HEADER_BYTES = 512
_MAGIC = "repro-nlc"
_VERSION = 1

_FILE_SEQ = itertools.count()


def store_dir() -> str:
    """Directory for store files: ``REPRO_STORE_DIR`` or the tmpdir."""
    return os.environ.get("REPRO_STORE_DIR") or tempfile.gettempdir()


def _new_path() -> str:
    return os.path.join(
        store_dir(), f"repro-nlc-{os.getpid()}-{next(_FILE_SEQ)}.nlc")


def _header_bytes(length: int, capacity: int) -> bytes:
    payload = json.dumps({
        "magic": _MAGIC,
        "version": _VERSION,
        "length": int(length),
        "capacity": int(capacity),
        "fields": [np.dtype(dt).str for dt in FIELD_DTYPES],
    }).encode("ascii")
    if len(payload) > HEADER_BYTES - 1:
        raise ValueError("store header overflow")
    return payload + b"\n" + b" " * (HEADER_BYTES - len(payload) - 1)


def _read_header(fh: BinaryIO) -> dict[str, Any]:
    fh.seek(0)
    raw = fh.read(HEADER_BYTES)
    if len(raw) < HEADER_BYTES:
        raise ValueError("truncated store header")
    header = json.loads(raw.split(b"\n", 1)[0].decode("ascii"))
    if header.get("magic") != _MAGIC or header.get("version") != _VERSION:
        raise ValueError(f"not a repro NLC store: {header!r}")
    return dict(header)


def _unlink_file(path: str) -> None:
    try:
        os.unlink(path)
    except FileNotFoundError:  # repro: fallback(already unlinked — close
        # races interpreter-exit finalizers with explicit close calls)
        pass


class MemmapStore(NLCStore):
    """Owner of one on-disk store file; ``close()`` unlinks it."""

    __slots__ = ("_finalizer", "__weakref__")

    def __init__(self, path: str, length: int, capacity: int) -> None:
        super().__init__("memmap", path, length, capacity)
        self._finalizer = weakref.finalize(self, _unlink_file, path)

    @property
    def path(self) -> str:
        return self.key

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + store_nbytes(self.capacity)

    def close(self) -> None:
        _sanitize.store_closed(self)
        self._finalizer()


class _MemmapWriter(StoreWriter):
    __slots__ = ("path", "_fh")

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.path = _new_path()
        self._fh: BinaryIO | None = open(self.path, "w+b")
        self._fh.write(_header_bytes(0, capacity))
        # Reserve the full extent up front (sparse where the filesystem
        # allows): attaching maps [0, nbytes) even before rows land.
        self._fh.truncate(HEADER_BYTES + store_nbytes(capacity))

    def _write(self, chunk: tuple, at: int) -> None:
        fh = self._fh
        assert fh is not None
        for i, arr in enumerate(chunk):
            fh.seek(HEADER_BYTES + field_offset(i, self.capacity) + at * 8)
            fh.write(arr.tobytes())

    def _seal(self, length: int) -> NLCStore:
        fh = self._fh
        assert fh is not None
        fh.seek(0)
        fh.write(_header_bytes(length, self.capacity))
        fh.flush()
        fh.close()
        self._fh = None
        return MemmapStore(self.path, length, self.capacity)

    def _release(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        _unlink_file(self.path)


class MemmapBackend:
    """The ``memmap`` storage backend (one instance per process)."""

    name = "memmap"

    def __init__(self) -> None:
        #: path -> (mmap, CircleSet) cached full attachments.  Slice
        #: attachments are uncached by design: their mapping dies with
        #: the returned views, which is what lets a tile sweep keep RSS
        #: at O(slice).
        self._attached: dict[str, tuple[Any, CircleSet]] = {}

    def publish(self, nlcs: CircleSet) -> MemmapStore:
        writer = _MemmapWriter(len(nlcs))
        writer.append(soa_arrays(nlcs))
        store = writer.finalize()
        assert isinstance(store, MemmapStore)
        return store

    def writer(self, capacity: int) -> _MemmapWriter:
        return _MemmapWriter(capacity)

    def _map(self, path: str, capacity: int) -> Any:
        size = HEADER_BYTES + store_nbytes(capacity)
        with open(path, "rb") as fh:
            header = _read_header(fh)
            if header["capacity"] != capacity:
                raise ValueError(
                    f"store {path}: header capacity {header['capacity']} "
                    f"!= handle capacity {capacity}")
            # mmap dups the descriptor, so the file handle can close.
            return mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ)

    def attach(self, handle: StoreHandle) -> CircleSet:
        _, path, length, capacity, _ = handle
        cached = self._attached.get(path)
        if cached is not None:
            return cached[1]
        mm = self._map(path, capacity)
        nlcs = CircleSet(*views_over(mm, length, capacity,
                                     base_offset=HEADER_BYTES))
        record_attach(length, is_slice=False)
        self._attached[path] = (mm, nlcs)
        return nlcs

    def attach_slice(self, handle: StoreHandle, lo: int,
                     hi: int) -> CircleSet:
        _, path, length, capacity, _ = handle
        lo, hi = check_slice(lo, hi, length)
        mm = self._map(path, capacity)
        nlcs = CircleSet(*views_over(mm, hi - lo, capacity, lo=lo,
                                     base_offset=HEADER_BYTES))
        record_attach(hi - lo, is_slice=True)
        # No cache entry: the mapping is pinned by the numpy views and
        # unmapped (RSS released) when the caller drops the CircleSet.
        return nlcs

    def detach(self, keep: tuple[str, ...] = ()) -> None:
        for path in [p for p in self._attached if p not in keep]:
            # Dropping the reference releases the mapping once any
            # caller-held views die; mmap needs no explicit close here
            # (closing with exported views would raise BufferError).
            del self._attached[path]
