"""Storage-backend protocol for the NLC structure-of-arrays.

One published :class:`~repro.index.circleset.CircleSet` lives in exactly
one *store*: six parallel 8-byte-element arrays laid back to back inside
a single buffer (segment, file, or the arrays themselves), field ``i``
starting at byte ``i * 8 * capacity``.  ``capacity`` is the row count
the buffer was sized for; ``length <= capacity`` is how many rows are
real — the gap is what lets a streaming build preallocate ``n * k``
rows and finalize with the post-filter count without a rewrite.

The lifecycle is **publish once, attach many**: the producing process
publishes (or streams) the arrays into a store and ships the tiny
picklable :attr:`NLCStore.handle`; consumers — worker processes, tiles,
Phase II jobs — attach read-only views of the whole store or of a row
slice (``attach_slice``), never the payload itself.  The owner alone
unlinks the backing resource via :meth:`NLCStore.close`.

Three backends implement the protocol (see :mod:`repro.store`):

``ram``
    today's in-process arrays; the handle carries them by value, so
    crossing a process boundary costs O(n) pickling (documented — it is
    the compatibility backend, not the transport of choice).
``shm``
    one ``multiprocessing.shared_memory`` segment (the PR-5 zero-copy
    transport, relocated here from ``CircleSet.to_shared``).
``memmap``
    a single file with a JSON header, attached as ``mmap`` views — the
    out-of-core tier: only the pages a consumer touches enter RSS, and
    they leave it again when the attachment is dropped.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.index.circleset import CircleSet
from repro.obs import metrics as _obs_metrics
from repro.store import sanitize as _sanitize

#: Field order and dtypes inside a store: six parallel arrays of 8-byte
#: elements (centres, radii, scores as float64; owners, levels as int64).
FIELD_DTYPES: tuple[type, ...] = (np.float64, np.float64, np.float64,
                                  np.float64, np.int64, np.int64)
FIELD_NAMES: tuple[str, ...] = ("cx", "cy", "r", "scores", "owners",
                                "levels")
N_FIELDS = len(FIELD_DTYPES)
BYTES_PER_ELEMENT = 8
BYTES_PER_ROW = N_FIELDS * BYTES_PER_ELEMENT

#: Picklable store handle: ``(backend, key, length, capacity, payload)``.
#: ``key`` is a unique hashable string (segment name, file path, or a
#: token) — the unit of attachment caching and of ``detach(keep=...)``.
#: ``payload`` is backend-private (``None`` for shm/memmap; the arrays
#: themselves for ram).
StoreHandle = tuple[str, str, int, int, Any]

#: Slice attachments served across all backends (transport counter:
#: topology-dependent, excluded from identity checks and the perf gate).
_STORE_SLICE_VIEWS = _obs_metrics.counter("store_slice_views")
#: High-water mark of bytes mapped by a single store attachment (full or
#: slice) in this process — the figure the out-of-core tier keeps
#: bounded while ``nbytes`` grows with the instance.
_STORE_BYTES_MAPPED = _obs_metrics.gauge("nlc_store_bytes_mapped")


def store_nbytes(capacity: int) -> int:
    """Payload bytes of a store sized for ``capacity`` rows."""
    return BYTES_PER_ROW * int(capacity)


def field_offset(field: int, capacity: int) -> int:
    """Byte offset of field ``field`` inside the payload region."""
    return field * BYTES_PER_ELEMENT * int(capacity)


def views_over(buf: Any, length: int, capacity: int, lo: int = 0,
               base_offset: int = 0) -> tuple[np.ndarray, ...]:
    """The six read-only SoA views over one buffer.

    ``length`` rows starting at row ``lo`` of a buffer laid out for
    ``capacity`` rows; ``base_offset`` skips a leading header (memmap).
    """
    views = []
    for i, dtype in enumerate(FIELD_DTYPES):
        offset = (base_offset + field_offset(i, capacity)
                  + lo * BYTES_PER_ELEMENT)
        view = np.frombuffer(buf, dtype=dtype, count=length, offset=offset)
        view.flags.writeable = False
        views.append(view)
    return tuple(views)


def check_slice(lo: int, hi: int, length: int) -> tuple[int, int]:
    """Validate and normalize an ``attach_slice`` row range."""
    lo, hi = int(lo), int(hi)
    if not (0 <= lo <= hi <= length):
        raise ValueError(
            f"slice [{lo}, {hi}) out of range for store of length {length}")
    return lo, hi


def record_attach(n_rows: int, *, is_slice: bool) -> None:
    """Instrument one attachment: slice counter + mapped-bytes gauge."""
    if is_slice:
        _STORE_SLICE_VIEWS.add()
    _STORE_BYTES_MAPPED.observe_max(BYTES_PER_ROW * int(n_rows))


def soa_arrays(nlcs: CircleSet) -> tuple[np.ndarray, ...]:
    """The six arrays of a :class:`CircleSet` in store field order."""
    return (nlcs.cx, nlcs.cy, nlcs.r, nlcs.scores, nlcs.owners,
            nlcs.levels)


def coerce_chunk(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, ...]:
    """Validate one writer chunk: six equal-length 1-D arrays, coerced
    to the store field dtypes (contiguous, no copy when already so)."""
    if len(arrays) != N_FIELDS:
        raise ValueError(
            f"chunk must carry {N_FIELDS} field arrays, got {len(arrays)}")
    out = tuple(np.ascontiguousarray(arr, dtype=dtype)
                for arr, dtype in zip(arrays, FIELD_DTYPES))
    n = out[0].shape[0]
    if any(arr.ndim != 1 or arr.shape[0] != n for arr in out):
        raise ValueError("chunk field arrays must be 1-D and equal length")
    return out


class NLCStore:
    """Owner of one published NLC store.

    The picklable :attr:`handle` is all a consumer needs; the store
    object itself never crosses a process boundary.  ``close()`` is
    idempotent and releases the backing resource (unlink the segment or
    file; drop the arrays) — safe to call with consumers still attached
    on POSIX, where pages live until the last mapping unmaps.
    """

    __slots__ = ("backend", "key", "length", "capacity")

    def __init__(self, backend: str, key: str, length: int,
                 capacity: int) -> None:
        self.backend = backend
        self.key = key
        self.length = int(length)
        self.capacity = int(capacity)
        _sanitize.store_created(self)

    @property
    def handle(self) -> StoreHandle:
        return (self.backend, self.key, self.length, self.capacity,
                self._payload())

    @property
    def nbytes(self) -> int:
        return store_nbytes(self.capacity)

    def _payload(self) -> Any:
        return None

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "NLCStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class StoreWriter:
    """Streaming producer half of a backend: rows go in chunk by chunk,
    one :class:`NLCStore` comes out.

    ``capacity`` rows are reserved up front (a streaming NLC build
    reserves ``n_customers * k`` and finalizes with the post-zero-filter
    count).  ``append`` consumes one chunk of the six field arrays *in
    field order*; ``finalize`` seals the store at the appended length
    and hands ownership to the returned store; ``abort`` releases the
    reservation if the build dies part way.
    """

    __slots__ = ("capacity", "cursor", "_done", "_san_token")

    #: Ledger token assigned by the REPRO_SANITIZE sanitizer (only when
    #: the mode is on; the slot costs nothing otherwise).
    _san_token: int

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self.cursor = 0
        self._done = False
        _sanitize.writer_opened(self)

    def append(self, arrays: Sequence[np.ndarray]) -> None:
        if self._done:
            raise RuntimeError("writer already finalized/aborted")
        chunk = coerce_chunk(arrays)
        n = chunk[0].shape[0]
        if self.cursor + n > self.capacity:
            raise ValueError(
                f"writer overflow: {self.cursor} + {n} rows exceeds "
                f"capacity {self.capacity}")
        if n:
            self._write(chunk, self.cursor)
        self.cursor += n

    def finalize(self) -> NLCStore:
        if self._done:
            raise RuntimeError("writer already finalized/aborted")
        self._done = True
        _sanitize.writer_done(self)
        return self._seal(self.cursor)

    def abort(self) -> None:
        if not self._done:
            self._done = True
            _sanitize.writer_done(self)
            self._release()

    def _write(self, chunk: tuple[np.ndarray, ...], at: int) -> None:
        raise NotImplementedError

    def _seal(self, length: int) -> NLCStore:
        raise NotImplementedError

    def _release(self) -> None:
        raise NotImplementedError


@runtime_checkable
class NLCStoreBackend(Protocol):
    """What every storage backend provides (see module docstring)."""

    name: str

    def publish(self, nlcs: CircleSet) -> NLCStore:
        """Copy a built ``CircleSet`` into a fresh store."""
        ...

    def writer(self, capacity: int) -> StoreWriter:
        """Reserve a ``capacity``-row store for a streaming build."""
        ...

    def attach(self, handle: StoreHandle) -> CircleSet:
        """Read-only views over every row (cached per process/key)."""
        ...

    def attach_slice(self, handle: StoreHandle, lo: int,
                     hi: int) -> CircleSet:
        """Read-only views over rows ``[lo, hi)`` only."""
        ...

    def detach(self, keep: tuple[str, ...] = ()) -> None:
        """Drop this process's cached attachments not named in ``keep``
        (worker epoch turn).  Views handed out earlier become invalid —
        callers rotate stores between solves, never during one."""
        ...
