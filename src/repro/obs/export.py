"""Exporters for spans and metrics.

Three formats, one source of truth (:class:`repro.obs.trace.SpanRecord`
plus registry snapshots):

* **Chrome trace** (:func:`write_chrome_trace`) — the ``trace_event``
  JSON array format, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Complete events (``ph: "X"``) with microsecond
  ``ts``/``dur``; the span's nesting ``depth`` becomes the ``tid`` so
  the viewer stacks children under parents, and ingested worker spans
  keep their own ``pid`` track.
* **JSON lines** (:func:`write_spans_jsonl`) — one span per line, in
  completion order; greppable and diffable without a viewer.
* **metrics.json** (:func:`write_metrics_json`) — flat counters +
  gauges + metadata; the file the CI perf gate reads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from .trace import SpanRecord

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_metrics_json",
]


def chrome_trace_events(
    spans: Iterable[SpanRecord],
    *,
    process_name: str = "repro",
) -> list[dict[str, Any]]:
    """Convert spans to ``trace_event`` dicts (complete events)."""
    events: list[dict[str, Any]] = []
    pids_seen: set[int] = set()
    for record in spans:
        if record.pid not in pids_seen:
            pids_seen.add(record.pid)
            label = process_name if record.pid == 0 else (
                f"{process_name} shard worker {record.pid}")
            events.append({
                "ph": "M", "name": "process_name", "pid": record.pid,
                "tid": 0, "args": {"name": label},
            })
        event: dict[str, Any] = {
            "ph": "X",
            "name": record.name,
            "cat": record.name.split("/", 1)[0],
            "ts": record.ts * 1e6,
            "dur": record.dur * 1e6,
            "pid": record.pid,
            # depth-as-tid renders the span tree as stacked rows; real
            # thread ids carry no information here (solves are
            # single-threaded per process).
            "tid": record.depth,
        }
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)
    return events


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[SpanRecord],
    *,
    process_name: str = "repro",
) -> Path:
    """Write spans as a Chrome ``trace_event`` JSON array."""
    path = Path(path)
    events = chrome_trace_events(spans, process_name=process_name)
    path.write_text(json.dumps(events, indent=1) + "\n", encoding="utf-8")
    return path


def write_spans_jsonl(path: str | Path, spans: Iterable[SpanRecord]) -> Path:
    """Write spans as JSON lines (one ``SpanRecord.as_dict`` per line)."""
    path = Path(path)
    lines = [json.dumps(record.as_dict(), sort_keys=True)
             for record in spans]
    path.write_text("\n".join(lines) + ("\n" if lines else ""),
                    encoding="utf-8")
    return path


def write_metrics_json(
    path: str | Path,
    counters: Mapping[str, int],
    gauges: Mapping[str, float] | None = None,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write the flat metrics document the perf gate consumes.

    Keys are sorted so the file is diff-stable; counters and gauges are
    kept in separate sections because only counters are deterministic
    (and therefore gateable).
    """
    path = Path(path)
    doc: dict[str, Any] = {
        "counters": {k: int(counters[k]) for k in sorted(counters)},
        "gauges": {k: float(v) for k, v in sorted((gauges or {}).items())},
    }
    if meta:
        doc["meta"] = dict(meta)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
