"""Observability layer: spans, deterministic work counters, exporters.

Three pieces (see docs/observability.md for the span taxonomy, the
counter glossary, and the CI gate):

* :mod:`repro.obs.trace` — hierarchical span tracer with a true no-op
  disabled mode (``trace.span("phase1/search")`` context manager and a
  ``@traced`` decorator).  Disabled by default; the CLI's ``--trace``
  flag and tests enable it.
* :mod:`repro.obs.metrics` — process-wide registry of named counters
  (deterministic work counts) and gauges (high-water levels),
  incremented through cheap handles.  ``SolverPipeline`` drains the
  registry into ``RunReport.counters`` after every solve.
* :mod:`repro.obs.export` — JSON-lines span log, Chrome
  ``trace_event`` output (Perfetto-loadable), and the flat
  ``metrics.json`` the CI perf gate (:mod:`repro.obs.gate`,
  ``python -m repro.obs.gate``) diffs against a checked-in baseline.

This package is import-light on purpose: importing ``repro.obs`` pulls
in nothing beyond the stdlib, so hot modules can hold handles at import
time without dragging in bench/engine dependencies.
"""

from __future__ import annotations

from .export import (chrome_trace_events, write_chrome_trace,
                     write_metrics_json, write_spans_jsonl)
from .metrics import (COUNTER_KEYS, GAUGE_KEYS, REGISTRY, Counter, Gauge,
                      MetricsRegistry, counter, gauge, zeroed_counters)
from .trace import TRACER, SpanRecord, Tracer, span, traced

__all__ = [
    "COUNTER_KEYS",
    "GAUGE_KEYS",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "REGISTRY",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "chrome_trace_events",
    "counter",
    "gauge",
    "span",
    "traced",
    "write_chrome_trace",
    "write_metrics_json",
    "write_spans_jsonl",
    "zeroed_counters",
]
