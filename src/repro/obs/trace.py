"""Hierarchical span tracer with a true no-op disabled mode.

A *span* is a named, timed interval of work.  Spans nest: the tracer
keeps a depth counter, so ``trace.span("phase1/search")`` opened inside
``pipeline/search`` records one level deeper, and exporters can rebuild
the tree from containment.  The instrumentation contract that makes it
safe to leave span calls in hot solver code:

* **Disabled is free.**  ``span()`` on a disabled tracer returns one
  shared no-op context manager — no allocation, no clock read, no
  record.  The overhead test (``tests/obs/test_overhead.py``) asserts
  the per-call cost stays in the tens-of-nanoseconds range and that a
  full fig11-tiny solve is unaffected.
* **Exception safe.**  A span closes (and records) on the error path
  exactly as on the success path; the nesting depth is restored either
  way, so one raising stage cannot corrupt the depth of every span
  after it.
* **Mergeable.**  Worker processes run their own tracer and ship plain
  :class:`SpanRecord` tuples back; :meth:`Tracer.ingest` splices them in
  under a distinct ``pid`` so a sharded solve renders as parallel tracks
  in one Chrome trace.

The process-wide tracer is :data:`TRACER`; ``span`` / ``enable`` /
``disable`` are its bound conveniences.  Timestamps are seconds since
the tracer's epoch (the last ``reset``/``enable``), converted to
microseconds only at export time.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, TypeVar

__all__ = [
    "SpanRecord",
    "Tracer",
    "TRACER",
    "span",
    "traced",
]

F = TypeVar("F", bound=Callable[..., Any])


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: plain data, JSON-serialisable via ``as_dict``.

    ``ts`` and ``dur`` are seconds relative to the recording tracer's
    epoch; ``pid`` is 0 for the tracing process and a caller-chosen
    positive id for ingested worker spans.
    """

    name: str
    ts: float
    dur: float
    depth: int
    pid: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "depth": self.depth,
            "pid": self.pid,
        }
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanRecord":
        return cls(name=str(data["name"]), ts=float(data["ts"]),
                   dur=float(data["dur"]), depth=int(data["depth"]),
                   pid=int(data.get("pid", 0)),
                   args=dict(data.get("args", {})))


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """A live span: records itself on exit, success or failure."""

    __slots__ = ("_tracer", "_name", "_args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str,
                 args: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._depth = tracer._depth
        tracer._depth = self._depth + 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._depth = self._depth
        tracer._records.append(SpanRecord(
            name=self._name, ts=self._start - tracer._epoch,
            dur=end - self._start, depth=self._depth, args=self._args))
        return False


class Tracer:
    """Process-wide span collector.  Disabled by default."""

    __slots__ = ("_enabled", "_records", "_depth", "_epoch")

    def __init__(self) -> None:
        self._enabled = False
        self._records: list[SpanRecord] = []
        self._depth = 0
        self._epoch = time.perf_counter()

    # -- state --------------------------------------------------------- #

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Start (or resume) recording; the epoch is set on first enable
        after a reset so timestamps stay on one axis across pauses."""
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self, enabled: bool | None = None) -> None:
        """Drop all records, restart the clock epoch and nesting depth."""
        self._records = []
        self._depth = 0
        self._epoch = time.perf_counter()
        if enabled is not None:
            self._enabled = enabled

    def now(self) -> float:
        """Seconds since the tracer epoch (the export time axis)."""
        return time.perf_counter() - self._epoch

    # -- recording ----------------------------------------------------- #

    def span(self, name: str, **args: Any) -> "_Span | _NoopSpan":
        """Context manager timing one named interval.

        Keyword arguments become the span's ``args`` payload (rendered
        by the Chrome trace viewer).  While the tracer is disabled this
        returns the shared no-op span — the call is the entire cost.
        """
        if not self._enabled:
            return _NOOP
        return _Span(self, name, args)

    def finished(self) -> tuple[SpanRecord, ...]:
        """All recorded spans, in completion order."""
        return tuple(self._records)

    def drain(self) -> list[SpanRecord]:
        """Return and clear the recorded spans (worker hand-off)."""
        records = self._records
        self._records = []
        return records

    def ingest(self, records: Iterable[SpanRecord | dict[str, Any]],
               pid: int, ts_offset: float = 0.0) -> None:
        """Splice another process's spans in under ``pid``.

        ``ts_offset`` (seconds on *this* tracer's axis) is added to every
        ingested timestamp — pass the local time the worker was launched
        so its spans line up with the launching span.
        """
        for record in records:
            if isinstance(record, dict):
                record = SpanRecord.from_dict(record)
            self._records.append(SpanRecord(
                name=record.name, ts=record.ts + ts_offset,
                dur=record.dur, depth=record.depth, pid=pid,
                args=record.args))


#: The process-wide tracer.  Import the bound conveniences below rather
#: than constructing tracers, so every layer records into one timeline.
TRACER = Tracer()

span = TRACER.span


def traced(name: str | None = None) -> Callable[[F], F]:
    """Decorator form of :func:`span` (span name defaults to the
    function's qualified name).  Adds one ``enabled`` check per call
    when tracing is off."""

    def decorate(fn: F) -> F:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER._enabled:
                return fn(*args, **kwargs)
            with TRACER.span(label):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
