"""Counter-based CI perf-regression gate (``python -m repro.obs.gate``).

Wall-clock thresholds on shared CI runners flap; deterministic work
counters do not.  For a fixed instance the MaxFirst solver performs a
bit-identical amount of work (quads generated, splits, Theorem-2/3
prunes, kernel batches) on every machine, so the gate can compare the
current run against a checked-in baseline with a tight band and zero
noise: a counter creeping past the band means the *algorithm* does more
work now, not that the runner was busy.

The gate re-runs the ``tiny``-scale figure-11 arms (site-count sweep,
uniform + normal) and the figure-13 default instance (both
distributions) with the ``maxfirst`` solver — plus the same instances
through the serial (unified-frontier) ``maxfirst-sharded`` solver, whose
counters are equally deterministic and guard the sharding overhead —
flattens the gated counters to ``{arm}/{counter}`` (and
``{arm}/sharded4/{counter}``) keys, and diffs them against
``bench-baselines/counters_tiny.json``:

* a counter **above** ``baseline * (1 + band)`` is a regression → exit 1;
* a counter **below** ``baseline * (1 - band)`` is an improvement → the
  gate passes and prints a hint to re-bless the baseline (with
  ``--write-baseline``) so the win is locked in;
* an arm/counter missing from either side fails — the baseline and the
  arm set must move together.

Gauges (peak RSS, scratch bytes) never enter the gate: they are real
measurements, not deterministic counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "GATED_COUNTERS",
    "SERVE_GATED_COUNTERS",
    "DEFAULT_BAND",
    "DEFAULT_BASELINE",
    "collect_counters",
    "collect_serve_counters",
    "compare",
    "main",
]

#: Counters diffed by the gate, all deterministic for a fixed instance.
#: MaxFirstStats work counters plus the kernel-batch counters from the
#: registry (COUNTER_KEYS) — the latter catch regressions in *how* the
#: classification work is batched, not just how much there is.
GATED_COUNTERS: tuple[str, ...] = (
    "generated",
    "splits",
    "pruned_theorem2",
    "pruned_theorem3",
    "results",
    "point_splits",
    "kernel_batches",
    "kernel_rects",
    "region_grows",
    "phase2_clips",
    "nlc_build_queries",
    "nlc_build_chunks",
)

#: Serve-layer counters pinned by the gate's ``serve`` arm.  They count
#: batch composition, not timing: the scripted workload
#: (:mod:`repro.serve.workload`) has a fixed number of requests and
#: batches, and pool submissions are counted parent-side per instance
#: group — independent of worker count — so the arm is exactly as
#: deterministic as the solver arms.  The cache counters pin the
#: workload's repeat structure (its repeated-request phase hits, its
#: distinct requests miss, nothing evicts under the default budget),
#: and ``heatmap_tiles_filled`` pins the tessellation rasterised by the
#: heat-map phase.
SERVE_GATED_COUNTERS: tuple[str, ...] = (
    "serve_requests",
    "serve_batches",
    "serve_pool_submissions",
    "serve_cache_hits",
    "serve_cache_misses",
    "serve_cache_evictions",
    "heatmap_tiles_filled",
)

DEFAULT_BAND = 0.10
DEFAULT_BASELINE = Path("bench-baselines/counters_tiny.json")


def _arm_problems(scale: str) -> Iterator[tuple[str, Any]]:
    """Yield ``(arm_name, problem)`` for every gated arm.

    Mirrors the fig11 site sweep and the fig13 default instance from
    :mod:`repro.bench.figures` (maxfirst arm only — MaxOverlap's pair
    counters live in its own report and are not gated here).
    """
    # Imported lazily so `repro.obs` itself stays import-light.
    from repro.bench.config import get_profile
    from repro.core.problem import MaxBRkNNProblem
    from repro.datasets.synthetic import synthetic_instance

    profile = get_profile(scale)
    seed = profile.seeds[0]

    def problem(n_sites: int, distribution: str) -> MaxBRkNNProblem:
        customers, sites = synthetic_instance(
            profile.n_customers, n_sites, distribution, seed=seed)
        return MaxBRkNNProblem(customers, sites, k=profile.k)

    for distribution in ("uniform", "normal"):
        for n_sites in profile.sites_sweep:
            yield (f"fig11_{distribution}/sites={n_sites}",
                   problem(n_sites, distribution))
        yield (f"fig13_{distribution}",
               problem(profile.n_sites, distribution))


def collect_counters(scale: str = "tiny") -> dict[str, int]:
    """Solve every gated arm and return flat ``{arm}/{counter}`` values."""
    from repro.engine.registry import run_pipeline

    flat: dict[str, int] = {}
    for arm, problem in _arm_problems(scale):
        _, report = run_pipeline("maxfirst", problem)
        for name in GATED_COUNTERS:
            flat[f"{arm}/{name}"] = int(report.counters[name])
        # The serial sharded solver is deterministic too (one unified
        # frontier, fixed tile grid), so its counters gate the sharding
        # overhead: cut-line tessellation creeping up shows here as
        # `generated` drifting above the blessed baseline.
        _, sharded = run_pipeline("maxfirst-sharded", problem,
                                  shards=4, mode="serial")
        for name in GATED_COUNTERS:
            flat[f"{arm}/sharded4/{name}"] = int(sharded.counters[name])
    return flat


def collect_serve_counters(scale: str = "tiny") -> dict[str, int]:
    """Replay the scripted serve workload; return flat
    ``serve_{scale}/{counter}`` values.

    The workload runs through a pooled :class:`~repro.serve.service
    .QueryService` (``workers=1``) so the pool-submission path is
    exercised, inside an isolated metrics registry so concurrent solver
    arms cannot leak into the serve numbers (or vice versa).
    """
    from repro.obs import metrics as _obs_metrics
    from repro.serve.service import QueryService
    from repro.serve.workload import scripted_batches, tiny_problem

    with _obs_metrics.REGISTRY.isolated() as box:
        with QueryService(store="ram", workers=1) as service:
            instance = service.publish(tiny_problem())
            for batch in scripted_batches(instance.instance_id):
                service.execute(batch)
    counters = box["counters"]
    return {f"serve_{scale}/{name}": int(counters.get(name, 0))
            for name in SERVE_GATED_COUNTERS}


def compare(current: Mapping[str, int], baseline: Mapping[str, int],
            *, band: float = DEFAULT_BAND) -> tuple[bool, list[str]]:
    """Diff current counters against the baseline.

    Returns ``(ok, messages)``: ``ok`` is False on any regression or
    key mismatch; improvements keep ``ok`` True but add hint messages.
    """
    messages: list[str] = []
    ok = True

    missing = sorted(set(baseline) - set(current))
    unexpected = sorted(set(current) - set(baseline))
    if missing:
        ok = False
        messages.append(
            f"FAIL: {len(missing)} baseline metric(s) missing from the "
            f"current run (first: {missing[0]}) — arm set drifted; "
            "regenerate the baseline with --write-baseline.")
    if unexpected:
        ok = False
        messages.append(
            f"FAIL: {len(unexpected)} metric(s) absent from the baseline "
            f"(first: {unexpected[0]}) — regenerate the baseline with "
            "--write-baseline.")

    improvements = 0
    for key in sorted(set(current) & set(baseline)):
        cur = current[key]
        base = baseline[key]
        hi = base * (1.0 + band)
        lo = base * (1.0 - band)
        if cur > hi:
            ok = False
            ratio = cur / base if base else float("inf")
            messages.append(
                f"FAIL: {key}: {cur} vs baseline {base} "
                f"(+{(ratio - 1.0) * 100.0:.1f}%, band ±{band * 100.0:.0f}%)"
                " — the solver does more work than the blessed baseline.")
        elif cur < lo:
            improvements += 1
            messages.append(
                f"improved: {key}: {cur} vs baseline {base} "
                f"({(cur / base - 1.0) * 100.0:.1f}%)")
    if improvements and ok:
        messages.append(
            f"{improvements} counter(s) improved beyond the band — "
            "update the baseline to lock the win in: "
            "PYTHONPATH=src python -m repro.obs.gate --scale tiny "
            f"--write-baseline {DEFAULT_BASELINE}")
    return ok, messages


def _load_flat(path: Path) -> dict[str, int]:
    """Read a metrics document, accepting either the flat gate baseline
    (``{"counters": {...}}``) or a bare flat mapping."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    counters = doc.get("counters", doc) if isinstance(doc, dict) else doc
    if not isinstance(counters, dict):
        raise ValueError(f"{path}: expected a JSON object of counters")
    return {str(k): int(v) for k, v in counters.items()}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.gate",
        description="Deterministic-counter perf gate (see docs/observability.md).")
    parser.add_argument("--scale", default="tiny",
                        help="bench scale profile to run (default: tiny)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline JSON to diff against "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--band", type=float, default=DEFAULT_BAND,
                        help="allowed relative deviation (default: 0.10)")
    parser.add_argument("--current", type=Path, default=None,
                        help="read current counters from a metrics.json "
                             "instead of re-running the arms")
    parser.add_argument("--out", type=Path, default=None,
                        help="also dump the current counters to this "
                             "metrics.json (CI artifact)")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="write the current counters as the new "
                             "baseline and exit (no diff)")
    args = parser.parse_args(argv)

    if args.current is not None:
        current = _load_flat(args.current)
    else:
        current = collect_counters(args.scale)
        current.update(collect_serve_counters(args.scale))

    from repro.obs.export import write_metrics_json

    if args.out is not None:
        write_metrics_json(args.out, current,
                           meta={"scale": args.scale,
                                 "gated_counters": list(GATED_COUNTERS)
                                 + list(SERVE_GATED_COUNTERS)})
        print(f"wrote {args.out} ({len(current)} metrics)")

    if args.write_baseline is not None:
        args.write_baseline.parent.mkdir(parents=True, exist_ok=True)
        write_metrics_json(args.write_baseline, current,
                           meta={"scale": args.scale,
                                 "band": args.band,
                                 "gated_counters": list(GATED_COUNTERS)
                                 + list(SERVE_GATED_COUNTERS)})
        print(f"wrote baseline {args.write_baseline} "
              f"({len(current)} metrics)")
        return 0

    if not args.baseline.exists():
        print(f"FAIL: baseline {args.baseline} not found; create it with "
              f"--write-baseline {args.baseline}")
        return 1

    baseline = _load_flat(args.baseline)
    ok, messages = compare(current, baseline, band=args.band)
    for message in messages:
        print(message)
    if ok:
        print(f"perf gate OK: {len(current)} counters within "
              f"±{args.band * 100.0:.0f}% of {args.baseline}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
