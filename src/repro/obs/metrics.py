"""Process-wide metrics registry: named work counters and gauges.

Counters here are *deterministic work counters* — monotonic counts of
algorithmic events (kernel batches, tree-node visits, refinement pair
tests) that are bit-stable across runs and machines for a fixed
instance.  That stability is what lets the CI perf gate
(:mod:`repro.obs.gate`) diff them against a checked-in baseline with a
tight band where wall-clock thresholds would flap.  Gauges are
level/high-water measurements (peak RSS, numpy scratch bytes) — useful
in reports, deliberately *excluded* from the gate because they are not
deterministic.

Increment sites hold a :class:`Counter` handle (module-level, fetched
once) and call ``handle.add(n)``; the handle mutates the registry's
dict in place, so :meth:`MetricsRegistry.isolated` can swap that dict
out and back to capture a delta without invalidating any handle — the
mechanism behind per-shard counter capture in ``engine/sharded.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "COUNTER_KEYS",
    "GAUGE_KEYS",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "zeroed_counters",
]

#: Transport counters: byte/job/steal/attach counts of the zero-copy
#: sharding transport (store publish, pool queue, slice attaches).
#: Unlike the deterministic work counters they depend on execution mode
#: and worker topology —
#: a serial run maps zero shared bytes, a 2-worker pool steals tiles a
#: 1-worker pool cannot — so identity tests and the perf gate must
#: exclude them.  They stay in ``COUNTER_KEYS`` so every report carries
#: the full schema.
TRANSPORT_COUNTER_KEYS: tuple[str, ...] = (
    "shm_bytes_mapped",
    "pool_tasks",
    "tiles_stolen",
    "phase2_pool_tasks",
    "store_slice_views",
)

#: Every registry counter key, in report order.  The counter-schema test
#: and :func:`repro.analysis.project_rules.check_obs_drift` hold this
#: tuple, the counter glossary in docs/observability.md, and the gate
#: baseline in sync.
COUNTER_KEYS: tuple[str, ...] = (
    "kernel_batches",
    "kernel_rects",
    "rtree_node_visits",
    "kdtree_node_visits",
    "refine_pair_tests",
    "region_grows",
    "phase2_clips",
    "nlc_build_queries",
    "nlc_build_chunks",
    "shard_tasks",
    "halo_assignments",
    "serve_requests",
    "serve_batches",
    "serve_pool_submissions",
    "serve_cache_hits",
    "serve_cache_misses",
    "serve_cache_evictions",
    "heatmap_tiles_filled",
) + TRANSPORT_COUNTER_KEYS

#: Every registry gauge key.  Gauges are observational (non-deterministic
#: allowed) and never enter the perf gate.
GAUGE_KEYS: tuple[str, ...] = (
    "peak_rss_bytes",
    "numpy_scratch_bytes_peak",
    "nlc_store_bytes_mapped",
    "nlc_build_chunk_rss_peak",
    "store_sanitize_violations",
    "serve_cache_bytes",
)


class Counter:
    """Cheap handle onto one named counter in a registry.

    The handle reads the live dict through the registry on every call,
    so ``isolated()`` swaps are visible immediately; the cost is one
    attribute load + dict get/set per ``add``.
    """

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name

    def add(self, n: int = 1) -> None:
        values = self._registry._counters
        values[self.name] = values.get(self.name, 0) + n


class Gauge:
    """Handle onto one named gauge (a level, not an accumulator)."""

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name

    def set(self, value: float) -> None:
        self._registry._gauges[self.name] = float(value)

    def observe_max(self, value: float) -> None:
        """Record ``value`` if it exceeds the current high-water mark."""
        gauges = self._registry._gauges
        current = gauges.get(self.name)
        if current is None or value > current:
            gauges[self.name] = float(value)


class MetricsRegistry:
    """Mutable store of counters and gauges with delta/merge support."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # -- handles ------------------------------------------------------- #

    def counter(self, name: str) -> Counter:
        return Counter(self, name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(self, name)

    # -- reading ------------------------------------------------------- #

    def snapshot(self) -> dict[str, int]:
        """Copy of the current counter values (delta baseline)."""
        return dict(self._counters)

    def gauges_snapshot(self) -> dict[str, float]:
        return dict(self._gauges)

    def delta_since(self, before: Mapping[str, int]) -> dict[str, int]:
        """Counter increments accumulated since ``before`` (a prior
        :meth:`snapshot`), dropping zero entries."""
        out: dict[str, int] = {}
        for name, value in self._counters.items():
            diff = value - before.get(name, 0)
            if diff != 0:
                out[name] = diff
        return out

    # -- writing ------------------------------------------------------- #

    def reset(self) -> None:
        self._counters = {}
        self._gauges = {}

    def merge_counts(self, counts: Mapping[str, int]) -> None:
        """Add another registry's counter deltas into this one."""
        values = self._counters
        for name, n in counts.items():
            values[name] = values.get(name, 0) + n

    def merge_gauges_max(self, gauges: Mapping[str, float]) -> None:
        """Fold in gauges from another process, keeping the maximum —
        the right combine for high-water marks across shards."""
        own = self._gauges
        for name, value in gauges.items():
            current = own.get(name)
            if current is None or value > current:
                own[name] = float(value)

    @contextmanager
    def isolated(self) -> Iterator[dict[str, Any]]:
        """Run a block against fresh counter/gauge stores and capture
        what it recorded.

        Yields a box dict; on exit the box holds ``{"counters": delta,
        "gauges": delta}`` for the block, and the pre-existing values are
        restored untouched.  Handles created before the block keep
        working inside and after it because they resolve the store
        through the registry on every call.  The restore runs on the
        exception path too, so a raising shard cannot leak its counts
        into the parent's totals.
        """
        saved_counters = self._counters
        saved_gauges = self._gauges
        self._counters = {}
        self._gauges = {}
        box: dict[str, Any] = {}
        try:
            yield box
        finally:
            box["counters"] = self._counters
            box["gauges"] = self._gauges
            self._counters = saved_counters
            self._gauges = saved_gauges


#: The process-wide registry every instrumented layer records into.
REGISTRY = MetricsRegistry()

counter = REGISTRY.counter
gauge = REGISTRY.gauge


def zeroed_counters() -> dict[str, int]:
    """A fresh ``{key: 0}`` dict over :data:`COUNTER_KEYS` — the base
    layer every ``RunReport.counters`` starts from, so degenerate
    instances still report the full stable key set."""
    return dict.fromkeys(COUNTER_KEYS, 0)
