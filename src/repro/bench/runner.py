"""Timed execution of solvers over problem instances.

The unit of measurement follows the paper: *total processing time
including NLC construction* (Section VI).  Solvers are resolved by name
through :mod:`repro.engine.registry` and run through the staged engine
pipeline, so every timing carries the run's
:class:`~repro.engine.report.RunReport` (per-stage breakdown plus work
counters) alongside the headline wall-clock number.

MaxOverlap points whose predicted intersection-pair count exceeds the
profile budget are skipped with an explanatory marker rather than
stalling the whole sweep — the paper's own Figure 12(a) leaves
MaxOverlap's curve incomplete for the same reason.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.nlc import knn_distances
from repro.core.problem import MaxBRkNNProblem
from repro.engine.registry import run_pipeline
from repro.engine.report import RunReport


@dataclass(frozen=True)
class SolverTiming:
    """One timed solver run (or a skip marker).

    ``report`` is the engine's per-stage instrumentation record; it is
    ``None`` only for skipped runs.
    """

    solver: str
    seconds: float | None
    score: float | None
    skipped_reason: str | None = None
    report: RunReport | None = field(default=None, compare=False)

    @property
    def skipped(self) -> bool:
        return self.skipped_reason is not None


@dataclass
class ExperimentResult:
    """One experiment: named columns over a sweep.

    ``rows`` is a list of dicts with homogeneous keys (what
    ``format_table`` renders); ``meta`` records the experiment id,
    profile, and any notes (skips, substitutions); ``reports`` collects
    the per-run :class:`RunReport` dicts, each tagged with the sweep
    coordinates of the row it belongs to.
    """

    experiment: str
    rows: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    reports: list[dict] = field(default_factory=list)

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def attach_report(self, report: RunReport | None, **context) -> None:
        """Record one run's report, tagged with its sweep coordinates."""
        if report is None:
            return
        entry = dict(context)
        entry.update(report.as_dict())
        self.reports.append(entry)

    def attach_timings(self, timings, **context) -> None:
        """Attach the reports of a :func:`run_solvers` mapping (or any
        iterable of timings) in one call."""
        values = timings.values() if hasattr(timings, "values") else timings
        for timing in values:
            self.attach_report(timing.report, **context)


def time_solver(name: str, problem: MaxBRkNNProblem, *,
                pair_budget: int | None = None,
                **solver_options) -> SolverTiming:
    """Wall-clock one registry-resolved solver run (NLC time included).

    ``pair_budget`` applies to ``"maxoverlap"`` only: a predicted
    intersecting-pair count above it skips the run (see
    :func:`predict_pair_count`).
    """
    if name == "maxoverlap" and pair_budget is not None:
        predicted = predict_pair_count(problem)
        if predicted > pair_budget:
            return SolverTiming(
                solver=name, seconds=None, score=None,
                skipped_reason=(
                    f"predicted ~{predicted:.2g} intersecting NLC pairs "
                    f"exceeds budget {pair_budget:.2g}"))
    start = time.perf_counter()
    result, report = run_pipeline(name, problem, **solver_options)
    elapsed = time.perf_counter() - start
    return SolverTiming(solver=name, seconds=elapsed, score=result.score,
                        report=report)


def time_maxfirst(problem: MaxBRkNNProblem, **solver_options) -> SolverTiming:
    """Wall-clock one MaxFirst run (NLC construction included)."""
    return time_solver("maxfirst", problem, **solver_options)


def time_maxoverlap(problem: MaxBRkNNProblem,
                    pair_budget: int | None = None,
                    **solver_options) -> SolverTiming:
    """Wall-clock one MaxOverlap run, or skip if predictably too heavy.

    The skip estimate is the expected number of intersecting NLC pairs
    under a uniformity assumption: ``n^2 * pi * (2 * mean_r)^2 / (2 *
    area)``.  It is an order-of-magnitude guard, not a precise model.
    """
    return time_solver("maxoverlap", problem, pair_budget=pair_budget,
                       **solver_options)


def predict_pair_count(problem: MaxBRkNNProblem) -> float:
    """Estimate MaxOverlap's intersecting-pair count before running it.

    Samples a subset of customers to estimate the mean k-th NN distance
    (the score-carrying NLC radius), then applies the uniform-density pair
    formula.  Clustered data intersects more than the estimate; the budget
    already carries an order-of-magnitude margin.
    """
    rng = np.random.default_rng(0)
    n = problem.n_customers
    sample_size = min(n, 2_000)
    idx = rng.choice(n, size=sample_size, replace=False)
    dists = knn_distances(problem.customers[idx], problem.sites, problem.k)
    mean_r = float(dists[:, -1].mean())
    bounds = problem.data_bounds()
    area = max(bounds.area, 1e-30)
    per_object = problem.k  # k circles per object carry candidate pairs
    n_circles = n * per_object
    return (n_circles * n_circles * math.pi * (2.0 * mean_r) ** 2
            / (2.0 * area))


def run_solvers(problem: MaxBRkNNProblem, pair_budget: int | None = None,
                maxfirst_options: dict | None = None,
                maxoverlap_options: dict | None = None,
                solvers: tuple[str, ...] = ("maxfirst", "maxoverlap"),
                solver_options: dict[str, dict] | None = None
                ) -> dict[str, SolverTiming]:
    """Run the named solvers on one instance; MaxOverlap honours the budget.

    ``solver_options`` maps solver name to constructor options for any
    registered solver; ``maxfirst_options`` / ``maxoverlap_options`` are
    the historical aliases for the default pair.
    """
    options = {name: dict(opts)
               for name, opts in (solver_options or {}).items()}
    if maxfirst_options:
        options.setdefault("maxfirst", {}).update(maxfirst_options)
    if maxoverlap_options:
        options.setdefault("maxoverlap", {}).update(maxoverlap_options)
    return {
        name: time_solver(name, problem, pair_budget=pair_budget,
                          **options.get(name, {}))
        for name in solvers
    }
