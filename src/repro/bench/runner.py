"""Timed execution of solvers over problem instances.

The unit of measurement follows the paper: *total processing time
including NLC construction* (Section VI).  MaxOverlap points whose
predicted intersection-pair count exceeds the profile budget are skipped
with an explanatory marker rather than stalling the whole sweep — the
paper's own Figure 12(a) leaves MaxOverlap's curve incomplete for the same
reason.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.maxoverlap import MaxOverlap
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import knn_distances
from repro.core.problem import MaxBRkNNProblem


@dataclass(frozen=True)
class SolverTiming:
    """One timed solver run (or a skip marker)."""

    solver: str
    seconds: float | None
    score: float | None
    skipped_reason: str | None = None

    @property
    def skipped(self) -> bool:
        return self.skipped_reason is not None


@dataclass
class ExperimentResult:
    """One experiment: named columns over a sweep.

    ``rows`` is a list of dicts with homogeneous keys; ``meta`` records
    the experiment id, profile, and any notes (skips, substitutions).
    """

    experiment: str
    rows: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]

    def add_row(self, **values) -> None:
        self.rows.append(values)


def time_maxfirst(problem: MaxBRkNNProblem, **solver_options) -> SolverTiming:
    """Wall-clock one MaxFirst run (NLC construction included)."""
    solver = MaxFirst(**solver_options)
    start = time.perf_counter()
    result = solver.solve(problem)
    elapsed = time.perf_counter() - start
    return SolverTiming(solver="maxfirst", seconds=elapsed,
                        score=result.score)


def time_maxoverlap(problem: MaxBRkNNProblem,
                    pair_budget: int | None = None,
                    **solver_options) -> SolverTiming:
    """Wall-clock one MaxOverlap run, or skip if predictably too heavy.

    The skip estimate is the expected number of intersecting NLC pairs
    under a uniformity assumption: ``n^2 * pi * (2 * mean_r)^2 / (2 *
    area)``.  It is an order-of-magnitude guard, not a precise model.
    """
    if pair_budget is not None:
        predicted = predict_pair_count(problem)
        if predicted > pair_budget:
            return SolverTiming(
                solver="maxoverlap", seconds=None, score=None,
                skipped_reason=(
                    f"predicted ~{predicted:.2g} intersecting NLC pairs "
                    f"exceeds budget {pair_budget:.2g}"))
    solver = MaxOverlap(**solver_options)
    start = time.perf_counter()
    result = solver.solve(problem)
    elapsed = time.perf_counter() - start
    return SolverTiming(solver="maxoverlap", seconds=elapsed,
                        score=result.score)


def predict_pair_count(problem: MaxBRkNNProblem) -> float:
    """Estimate MaxOverlap's intersecting-pair count before running it.

    Samples a subset of customers to estimate the mean k-th NN distance
    (the score-carrying NLC radius), then applies the uniform-density pair
    formula.  Clustered data intersects more than the estimate; the budget
    already carries an order-of-magnitude margin.
    """
    rng = np.random.default_rng(0)
    n = problem.n_customers
    sample_size = min(n, 2_000)
    idx = rng.choice(n, size=sample_size, replace=False)
    dists = knn_distances(problem.customers[idx], problem.sites, problem.k)
    mean_r = float(dists[:, -1].mean())
    bounds = problem.data_bounds()
    area = max(bounds.area, 1e-30)
    per_object = problem.k  # k circles per object carry candidate pairs
    n_circles = n * per_object
    return (n_circles * n_circles * math.pi * (2.0 * mean_r) ** 2
            / (2.0 * area))


def run_solvers(problem: MaxBRkNNProblem, pair_budget: int | None = None,
                maxfirst_options: dict | None = None,
                maxoverlap_options: dict | None = None
                ) -> dict[str, SolverTiming]:
    """Run both solvers on one instance; MaxOverlap honours the budget."""
    timings = {
        "maxfirst": time_maxfirst(problem, **(maxfirst_options or {})),
        "maxoverlap": time_maxoverlap(problem, pair_budget=pair_budget,
                                      **(maxoverlap_options or {})),
    }
    return timings
