"""Benchmark scale profiles.

The paper's parameter grid (Table II) assumes a 2008-era C++ testbed; this
reproduction runs pure Python.  Three profiles keep every experiment's
*shape* while making the default run practical:

* ``tiny`` — smoke scale, seconds per figure (CI-friendly).
* ``small`` — the default: the paper's grid scaled down ~10x in ``|O|``
  and ~5x in ``|P|``, which preserves the ``|O|/|P|`` regime the paper
  studies (NLC size and overlap are governed by that ratio).
* ``paper`` — the literal Table II grid; expect MaxOverlap points to take
  a long time (that observation *is* Figure 10).

Select with the ``REPRO_SCALE`` environment variable or pass a profile
explicitly.  MaxOverlap points whose predicted pair count exceeds
``maxoverlap_pair_budget`` are skipped and reported as such — mirroring
the paper's own incomplete MaxOverlap curve in Figure 12(a) ("MaxOverlap
needs days").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScaleProfile:
    """One benchmark scale: default instance sizes plus sweep grids."""

    name: str
    # Table II defaults.
    n_customers: int
    n_sites: int
    k: int
    # Sweep grids (Figures 8, 10, 11, 12).
    customers_sweep: tuple[int, ...]
    sites_sweep: tuple[int, ...]
    k_sweep: tuple[int, ...]
    m_sweep: tuple[int, ...]
    prob_k_sweep: tuple[int, ...]
    # Figure 14: real-world dataset sizes and |P|/|O| ratios.
    ux_points: int
    ne_points: int
    ratio_denominators: tuple[int, ...]
    # Pair-count budget above which a MaxOverlap point is skipped.
    maxoverlap_pair_budget: int
    seeds: tuple[int, ...] = field(default=(11,))


_PROFILES = {
    "tiny": ScaleProfile(
        name="tiny",
        n_customers=800, n_sites=40, k=1,
        customers_sweep=(200, 400, 800),
        sites_sweep=(20, 40, 80),
        k_sweep=(1, 2, 4),
        m_sweep=(1, 2, 4, 8),
        prob_k_sweep=(1, 2, 4),
        ux_points=2_000, ne_points=4_000,
        ratio_denominators=(10, 20, 50),
        maxoverlap_pair_budget=600_000,
    ),
    "small": ScaleProfile(
        name="small",
        n_customers=5_000, n_sites=100, k=1,
        customers_sweep=(1_000, 2_000, 4_000, 8_000, 10_000),
        sites_sweep=(25, 50, 100, 200),
        k_sweep=(1, 2, 4, 8),
        m_sweep=(1, 2, 4, 8, 16),
        prob_k_sweep=(1, 5, 10, 15),
        ux_points=19_499, ne_points=30_000,
        ratio_denominators=(50, 100, 200, 500),
        maxoverlap_pair_budget=6_000_000,
    ),
    "paper": ScaleProfile(
        name="paper",
        n_customers=50_000, n_sites=500, k=1,
        customers_sweep=(10_000, 25_000, 50_000, 75_000, 100_000),
        sites_sweep=(100, 250, 500, 750, 1_000),
        k_sweep=(1, 3, 6, 9, 12, 15),
        m_sweep=(1, 2, 4, 8, 16),
        prob_k_sweep=(1, 5, 10, 15),
        ux_points=19_499, ne_points=123_593,
        ratio_denominators=(50, 100, 200, 500),
        maxoverlap_pair_budget=60_000_000,
    ),
}


def get_profile(name: str | None = None) -> ScaleProfile:
    """Resolve a profile by name, default, or ``REPRO_SCALE``."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale profile {name!r}; "
            f"expected one of {sorted(_PROFILES)}") from None


def profile_names() -> tuple[str, ...]:
    return tuple(sorted(_PROFILES))
