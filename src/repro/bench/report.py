"""Plain-text reporting: aligned tables and log-scale ASCII charts.

The harness has no plotting dependency; every paper figure is emitted as a
table (the numbers EXPERIMENTS.md records) plus an ASCII chart that makes
the figure's *shape* — slopes, gaps, crossovers — visible in a terminal or
CI log.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                 floatfmt: str = ".4g") -> str:
    """Render dict rows as an aligned text table.

    ``None`` cells render as ``-`` (used for skipped MaxOverlap points).
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[cell(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table))
              for i, col in enumerate(columns)]
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(val.rjust(w) for val, w in zip(line, widths))
        for line in table)
    return f"{header}\n{rule}\n{body}"


def ascii_chart(x_values: Sequence, series: Mapping[str, Iterable],
                width: int = 64, height: int = 16, log_y: bool = True,
                title: str = "") -> str:
    """A rough scatter/line chart in ASCII, optionally log-scale in y.

    ``series`` maps a label to y-values aligned with ``x_values``;
    ``None`` y-values (skipped points) are left out.  Each series draws
    with its own marker; the y-axis prints the decade/value ticks on the
    left.
    """
    markers = "*o+x#@%&"
    points: list[tuple[int, float, str]] = []  # (x index, y, marker)
    for s_idx, (label, ys) in enumerate(series.items()):
        marker = markers[s_idx % len(markers)]
        for i, y in enumerate(ys):
            if y is None:
                continue
            y = float(y)
            if log_y and y <= 0:
                continue
            points.append((i, y, marker))
    if not points:
        return f"{title}\n(no data)"

    ys_all = [p[1] for p in points]
    if log_y:
        lo = math.log10(min(ys_all))
        hi = math.log10(max(ys_all))
    else:
        lo = min(ys_all)
        hi = max(ys_all)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    n_x = max(len(x_values), 2)
    for i, y, marker in points:
        col = round(i * (width - 1) / (n_x - 1))
        yv = math.log10(y) if log_y else y
        row = round((yv - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    def ytick(row: int) -> str:
        yv = lo + (height - 1 - row) / (height - 1) * (hi - lo)
        value = 10 ** yv if log_y else yv
        return f"{value:9.3g} |"

    lines = []
    if title:
        lines.append(title)
    for row in range(height):
        prefix = ytick(row) if row % 4 == 0 or row == height - 1 else (
            " " * 9 + " |")
        lines.append(prefix + "".join(grid[row]))
    lines.append(" " * 10 + "+" + "-" * width)
    labels = "  ".join(str(x) for x in x_values)
    lines.append(" " * 11 + labels[:width + 8])
    legend = "   ".join(
        f"{markers[i % len(markers)]}={label}"
        for i, label in enumerate(series))
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def speedup_summary(rows: Sequence[Mapping], fast_key: str,
                    slow_key: str) -> str:
    """One-line geometric-mean speedup over rows where both ran."""
    ratios = []
    for row in rows:
        fast = row.get(fast_key)
        slow = row.get(slow_key)
        if fast and slow:
            ratios.append(slow / fast)
    if not ratios:
        return "speedup: n/a (no comparable points)"
    geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return (f"speedup ({slow_key}/{fast_key}): geo-mean {geo:.1f}x over "
            f"{len(ratios)} points (max {max(ratios):.1f}x)")
