"""Benchmark harness: the experiments of Section VI, re-runnable.

* :mod:`~repro.bench.config` — scale profiles (Table II parameters at
  ``paper`` scale; proportionally scaled-down grids for CI).
* :mod:`~repro.bench.runner` — timed experiment execution helpers.
* :mod:`~repro.bench.figures` — one function per paper figure/table that
  produces the figure's data series.
* :mod:`~repro.bench.report` — text tables and log-scale ASCII charts.

The pytest-benchmark entry points live in ``benchmarks/`` at the repo
root; each wraps one function from :mod:`~repro.bench.figures`.
"""

from repro.bench.config import ScaleProfile, get_profile
from repro.bench.report import ascii_chart, format_table
from repro.bench.runner import ExperimentResult, SolverTiming, run_solvers

__all__ = [
    "ExperimentResult",
    "ScaleProfile",
    "SolverTiming",
    "ascii_chart",
    "format_table",
    "get_profile",
    "run_solvers",
]
