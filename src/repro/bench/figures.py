"""One function per paper figure/table: the experiment definitions.

Every function returns an :class:`~repro.bench.runner.ExperimentResult`
whose rows are exactly the series the corresponding figure plots.  The
pytest-benchmark wrappers in ``benchmarks/`` call these and print the
tables; EXPERIMENTS.md records paper-vs-measured shapes.

All experiments honour the scale profile (``REPRO_SCALE``) and a seed, so
runs are reproducible.
"""

from __future__ import annotations

from repro.bench.config import ScaleProfile, get_profile
from repro.bench.runner import (ExperimentResult, run_solvers,
                                time_maxfirst, time_maxoverlap,
                                time_solver)
from repro.core.probability import ProbabilityModel
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.realworld import make_ne, make_ux, split_sites
from repro.datasets.synthetic import synthetic_instance


def _problem(n_customers: int, n_sites: int, k: int, distribution: str,
             seed: int, probability=None) -> MaxBRkNNProblem:
    customers, sites = synthetic_instance(n_customers, n_sites,
                                          distribution, seed=seed)
    return MaxBRkNNProblem(customers, sites, k=k, probability=probability)


# ---------------------------------------------------------------------- #
# Figure 8 — effect of the intersection-point threshold m
# ---------------------------------------------------------------------- #

def fig08_effect_of_m(profile: ScaleProfile | None = None,
                      seed: int | None = None) -> ExperimentResult:
    """MaxFirst runtime as ``m`` varies (paper: flat line — insensitive)."""
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult("fig08_effect_of_m",
                           meta={"profile": profile.name,
                                 "distribution": "uniform",
                                 "n_customers": profile.n_customers,
                                 "n_sites": profile.n_sites})
    problem = _problem(profile.n_customers, profile.n_sites, profile.k,
                       "uniform", seed)
    for m in profile.m_sweep:
        timing = time_maxfirst(problem, m_threshold=m)
        out.add_row(m=m, maxfirst_s=timing.seconds, score=timing.score)
        out.attach_report(timing.report, m=m)
    return out


# ---------------------------------------------------------------------- #
# Figure 10 — effect of |O| (uniform: a; normal: b)
# ---------------------------------------------------------------------- #

def fig10_effect_of_customers(distribution: str,
                              profile: ScaleProfile | None = None,
                              seed: int | None = None) -> ExperimentResult:
    """Both solvers as the customer count grows (log-scale in the paper).

    The paper's headline: MaxFirst grows slowly, MaxOverlap quadratically;
    the gap reaches 2-3 orders of magnitude.
    """
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult(
        f"fig10_effect_of_customers_{distribution}",
        meta={"profile": profile.name, "distribution": distribution,
              "n_sites": profile.n_sites, "k": profile.k})
    for n in profile.customers_sweep:
        problem = _problem(n, profile.n_sites, profile.k, distribution,
                           seed)
        timings = run_solvers(problem,
                              pair_budget=profile.maxoverlap_pair_budget)
        out.add_row(
            n_customers=n,
            maxfirst_s=timings["maxfirst"].seconds,
            maxoverlap_s=timings["maxoverlap"].seconds,
            maxfirst_score=timings["maxfirst"].score,
            maxoverlap_score=timings["maxoverlap"].score,
            maxoverlap_skip=timings["maxoverlap"].skipped_reason,
        )
        out.attach_timings(timings, n_customers=n)
    return out


# ---------------------------------------------------------------------- #
# Figure 11 — effect of |P| (uniform: a; normal: b)
# ---------------------------------------------------------------------- #

def fig11_effect_of_sites(distribution: str,
                          profile: ScaleProfile | None = None,
                          seed: int | None = None) -> ExperimentResult:
    """Both solvers as the site count grows.

    The paper: both get *faster* with more sites (smaller NLCs), the drop
    being steeper under the uniform distribution.
    """
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult(
        f"fig11_effect_of_sites_{distribution}",
        meta={"profile": profile.name, "distribution": distribution,
              "n_customers": profile.n_customers, "k": profile.k})
    for n_sites in profile.sites_sweep:
        problem = _problem(profile.n_customers, n_sites, profile.k,
                           distribution, seed)
        timings = run_solvers(problem,
                              pair_budget=profile.maxoverlap_pair_budget)
        out.add_row(
            n_sites=n_sites,
            maxfirst_s=timings["maxfirst"].seconds,
            maxoverlap_s=timings["maxoverlap"].seconds,
            maxfirst_score=timings["maxfirst"].score,
            maxoverlap_score=timings["maxoverlap"].score,
            maxoverlap_skip=timings["maxoverlap"].skipped_reason,
        )
        out.attach_timings(timings, n_sites=n_sites)
    return out


# ---------------------------------------------------------------------- #
# Figure 12(a) — effect of k (equal probabilities, both solvers)
# ---------------------------------------------------------------------- #

def fig12a_effect_of_k(profile: ScaleProfile | None = None,
                       seed: int | None = None) -> ExperimentResult:
    """Both solvers as ``k`` grows under the uniform probability model.

    The paper: MaxOverlap deteriorates so fast its curve is left
    incomplete ("needs days"); the pair budget reproduces that skip.
    """
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult(
        "fig12a_effect_of_k",
        meta={"profile": profile.name, "distribution": "uniform",
              "n_customers": profile.n_customers,
              "n_sites": profile.n_sites})
    for k in profile.k_sweep:
        problem = _problem(profile.n_customers, profile.n_sites, k,
                           "uniform", seed)
        timings = run_solvers(problem,
                              pair_budget=profile.maxoverlap_pair_budget)
        out.add_row(
            k=k,
            maxfirst_s=timings["maxfirst"].seconds,
            maxoverlap_s=timings["maxoverlap"].seconds,
            maxfirst_score=timings["maxfirst"].score,
            maxoverlap_score=timings["maxoverlap"].score,
            maxoverlap_skip=timings["maxoverlap"].skipped_reason,
        )
        out.attach_timings(timings, k=k)
    return out


# ---------------------------------------------------------------------- #
# Figure 12(b) — effect of the probability model series (MaxFirst only)
# ---------------------------------------------------------------------- #

def fig12b_probability_models(profile: ScaleProfile | None = None,
                              seed: int | None = None) -> ExperimentResult:
    """MaxFirst under the M1 (linear) and M2 (harmonic) model series.

    The paper: the two curves nearly coincide — runtime is driven by
    ``k``, not by the probability values.
    """
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult(
        "fig12b_probability_models",
        meta={"profile": profile.name, "distribution": "uniform",
              "n_customers": profile.n_customers,
              "n_sites": profile.n_sites})
    for k in profile.prob_k_sweep:
        problem_m1 = _problem(profile.n_customers, profile.n_sites, k,
                              "uniform", seed,
                              probability=ProbabilityModel.linear(k))
        problem_m2 = _problem(profile.n_customers, profile.n_sites, k,
                              "uniform", seed,
                              probability=ProbabilityModel.harmonic(k))
        t1 = time_maxfirst(problem_m1)
        t2 = time_maxfirst(problem_m2)
        out.add_row(k=k, m1_s=t1.seconds, m2_s=t2.seconds,
                    m1_score=t1.score, m2_score=t2.score)
        out.attach_report(t1.report, k=k, model="m1")
        out.attach_report(t2.report, k=k, model="m2")
    return out


# ---------------------------------------------------------------------- #
# Figure 13 — pruning effectiveness counters
# ---------------------------------------------------------------------- #

def fig13_pruning(distribution: str,
                  profile: ScaleProfile | None = None,
                  seed: int | None = None) -> ExperimentResult:
    """Quadrants generated / split / pruned on the default instance.

    The paper: splits stay at a few percent of ``|O|`` and Theorem 2 does
    most of the pruning, under both distributions.
    """
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult(
        f"fig13_pruning_{distribution}",
        meta={"profile": profile.name, "distribution": distribution,
              "n_customers": profile.n_customers,
              "n_sites": profile.n_sites, "k": profile.k})
    problem = _problem(profile.n_customers, profile.n_sites, profile.k,
                       distribution, seed)
    timing = time_solver("maxfirst", problem)
    counters = timing.report.counters
    out.add_row(
        distribution=distribution,
        total=counters["generated"],
        splits=counters["splits"],
        pruned1=counters["pruned_theorem2"],
        pruned2=counters["pruned_theorem3"],
        splits_per_customer=counters["splits"] / problem.n_customers,
        score=timing.score,
    )
    out.attach_report(timing.report, distribution=distribution)
    return out


# ---------------------------------------------------------------------- #
# Figure 14 — real-world datasets, |P|/|O| ratio sweep
# ---------------------------------------------------------------------- #

def fig14_real_world(dataset: str,
                     profile: ScaleProfile | None = None,
                     seed: int | None = None) -> ExperimentResult:
    """Both solvers on the UX/NE substitutes as the site ratio shrinks.

    The paper: shrinking |P|/|O| from 1/50 to 1/500 costs MaxOverlap
    ~100x but MaxFirst only ~3x.
    """
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    if dataset == "ux":
        points = make_ux(profile.ux_points)
    elif dataset == "ne":
        points = make_ne(profile.ne_points)
    else:
        raise ValueError(f"unknown dataset {dataset!r}; expected ux or ne")
    out = ExperimentResult(
        f"fig14_real_world_{dataset}",
        meta={"profile": profile.name, "dataset": dataset,
              "n_points": int(points.shape[0]), "k": profile.k,
              "substitution": "synthetic stand-in (DESIGN.md §4)"})
    for denom in profile.ratio_denominators:
        n_sites = max(profile.k, points.shape[0] // denom)
        customers, sites = split_sites(points, n_sites, seed=seed)
        problem = MaxBRkNNProblem(customers, sites, k=profile.k)
        timings = run_solvers(problem,
                              pair_budget=profile.maxoverlap_pair_budget)
        out.add_row(
            ratio=f"1/{denom}",
            n_sites=n_sites,
            maxfirst_s=timings["maxfirst"].seconds,
            maxoverlap_s=timings["maxoverlap"].seconds,
            maxfirst_score=timings["maxfirst"].score,
            maxoverlap_score=timings["maxoverlap"].score,
            maxoverlap_skip=timings["maxoverlap"].skipped_reason,
        )
        out.attach_timings(timings, ratio=f"1/{denom}")
    return out


# ---------------------------------------------------------------------- #
# Ablations (DESIGN.md §5)
# ---------------------------------------------------------------------- #

def ablation_backends(profile: ScaleProfile | None = None,
                      seed: int | None = None) -> ExperimentResult:
    """Vectorised hierarchical classification vs literal R-tree queries."""
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult("ablation_backends",
                           meta={"profile": profile.name})
    for n in profile.customers_sweep[:3]:
        problem = _problem(n, profile.n_sites, profile.k, "uniform", seed)
        vector = time_maxfirst(problem, backend="vector")
        rtree = time_maxfirst(problem, backend="rtree")
        out.add_row(n_customers=n, vector_s=vector.seconds,
                    rtree_s=rtree.seconds, vector_score=vector.score,
                    rtree_score=rtree.score)
        out.attach_report(vector.report, n_customers=n, backend="vector")
        out.attach_report(rtree.report, n_customers=n, backend="rtree")
    return out


def ablation_theorem3(profile: ScaleProfile | None = None,
                      seed: int | None = None) -> ExperimentResult:
    """Theorem 3 variants: subset (ours) vs equality (pseudocode).

    A no-Theorem-3 arm does not exist: the rule is what terminates the
    tessellation along a found region's boundary (see MaxFirst docs).
    """
    profile = profile or get_profile()
    seed = profile.seeds[0] if seed is None else seed
    out = ExperimentResult("ablation_theorem3",
                           meta={"profile": profile.name})
    problem = _problem(profile.n_customers, profile.n_sites, profile.k,
                       "uniform", seed)
    for mode in ("subset", "equality"):
        timing = time_solver("maxfirst", problem, theorem3=mode)
        counters = timing.report.counters
        out.add_row(mode=mode, seconds=timing.seconds, score=timing.score,
                    splits=counters["splits"],
                    pruned2=counters["pruned_theorem3"])
        out.attach_report(timing.report, mode=mode)
    return out
