"""The paper's worked example (Figures 1-3, 6 and Table I), as a fixture.

The paper never publishes the coordinates behind its running example, so
this module constructs a scene with the same *story* and exactly the same
headline numbers:

* three customers, four sites, ``k = 2``, unit weights;
* under the probability model ``{0.8, 0.2}`` the optimum is a region
  inside the *first* NLCs of two customers — total influence **1.6**
  (paper: "o2 and o3 will go to it 80% of the time ... 160%");
* the region inside all three *second* NLCs — what MaxOverlap's
  equal-probability optimum corresponds to — scores only ``3 x 0.2 =``
  **0.6** under ``{0.8, 0.2}`` (paper: "the overall level of interest
  ... is 60%");
* under the uniform model ``{0.5, 0.5}`` that three-customer region wins
  with **1.5**, and MaxFirst and MaxOverlap agree (paper: "MaxFirst will
  return the same optimal region as MaxOverlap if the probability model
  is {0.5, 0.5}").

``initial_quadrant_bounds`` reproduces the *kind* of data Table I lists:
the ``m̂ax`` / ``m̂in`` bounds of the first quadrant generations.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import VectorBackend
from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem

CUSTOMERS = np.array([
    (0.0, 0.0),   # o1
    (4.0, 0.0),   # o2
    (4.0, 2.0),   # o3
])

SITES = np.array([
    (-1.0, 0.0),   # p1: o1's nearest site
    (3.5, -1.5),   # p2: o2's nearest site
    (4.0, 3.2),    # p3: o3's nearest site
    (1.0, -0.5),   # p4: the shared second-nearest site of o1 and o2
])

SKEWED_MODEL = (0.8, 0.2)
UNIFORM_MODEL = (0.5, 0.5)

# Influence of the optimal region under {0.8, 0.2}: o2 and o3 at 80% each.
EXPECTED_SKEWED_SCORE = 1.6
# Influence of the three-customer region under {0.8, 0.2}: 3 x 20%.
EXPECTED_THREE_CUSTOMER_SCORE_SKEWED = 0.6
# Influence of the optimal region under {0.5, 0.5}: three customers at 50%.
EXPECTED_UNIFORM_SCORE = 1.5


def worked_example_problem(probability=SKEWED_MODEL) -> MaxBRkNNProblem:
    """The running-example instance with a chosen probability model."""
    return MaxBRkNNProblem(customers=CUSTOMERS, sites=SITES, k=2,
                           probability=list(probability))


def initial_quadrant_bounds(probability=SKEWED_MODEL,
                            generations: int = 2) -> list[dict]:
    """Bounds of the first quadrant generations (a Table I analogue).

    Generation 0 is the root's four quadrants; each further generation
    splits the quadrant with the largest ``m̂ax`` — exactly how the
    paper's Table I / Figure 6 walk proceeds.
    """
    problem = worked_example_problem(probability)
    nlcs = build_nlcs(problem, keep_zero_score=True)
    space = nlc_space(nlcs)
    backend = VectorBackend(nlcs)

    rows: list[dict] = []
    frontier = [backend.classify(rect, backend.root_candidates(), 1)
                for rect in space.split_center()]
    next_id = 1
    for quad in frontier:
        rows.append(_row(next_id, 0, quad))
        next_id += 1

    for generation in range(1, generations + 1):
        best = max(frontier, key=lambda q: q.max_hat)
        frontier.remove(best)
        children = [backend.classify(rect, best.intersecting,
                                     best.depth + 1)
                    for rect in best.rect.split_center()]
        for quad in children:
            rows.append(_row(next_id, generation, quad))
            next_id += 1
        frontier.extend(children)
    return rows


def _row(quad_id: int, generation: int, quad) -> dict:
    return {
        "quadrant": f"q{quad_id}",
        "generation": generation,
        "max_hat": round(quad.max_hat, 6),
        "min_hat": round(quad.min_hat, 6),
    }
